#include "flow/sweep.hpp"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdio>
#include <map>
#include <mutex>
#include <stdexcept>
#include <thread>
#include <unordered_set>
#include <utility>

#include "ope/dfs_models.hpp"
#include "petri/reuse.hpp"
#include "verify/cache.hpp"

namespace rap::flow {

std::string_view to_string(SweepStatus status) {
    switch (status) {
        case SweepStatus::kOk: return "ok";
        case SweepStatus::kInvalid: return "invalid";
        case SweepStatus::kTimedOut: return "timed-out";
        case SweepStatus::kCancelled: return "cancelled";
    }
    return "?";
}

namespace detail {

/// Everything a running sweep shares between the launching thread, the
/// worker pool and the Handle. Lifetime: shared_ptr held by the Handle
/// and (via the thread objects living inside it) the workers.
struct SweepState {
    // -- immutable after launch -----------------------------------------
    Sweep::Factory factory;
    DesignOptions base;
    verify::Spec spec;
    std::vector<SweepPoint> grid;
    std::vector<tech::VoltageSchedule> schedules;
    double timeout_s = 0.0;
    Sweep::ResultCallback callback;
    std::size_t max_in_flight = 1;
    /// Shared-store mode: chains of grid indices, one per (stages,
    /// schedule) pair in grid order. A chain is the scheduling unit —
    /// its points run on one worker, in depth order, against one
    /// ReuseStore (explorations sharing a store must be sequenced).
    /// Empty when the mode is off (points schedule individually).
    std::vector<std::vector<std::size_t>> chains;
    /// Checkpoint directory ("" = off): each point writes
    /// `<dir>/<flattened label>.ckpt`.
    std::string checkpoint_dir;
    /// Cache counters at launch, so the metrics snapshot can attribute
    /// hit-rate to this sweep rather than the whole process lifetime.
    verify::CacheStats cache_before;

    // -- work distribution ----------------------------------------------
    std::atomic<std::size_t> next{0};
    std::atomic<bool> cancelled{false};
    std::vector<std::thread> pool;

    // -- mutable results + aggregates (guarded by mutex) ------------------
    std::mutex mutex;
    std::condition_variable gate;  ///< max_in_flight admission
    std::size_t in_flight = 0;
    std::vector<SweepResult> results;  ///< slot per grid point
    std::size_t done = 0;
    std::unordered_set<std::string> distinct;  ///< model fingerprints
    std::size_t states_total = 0;
    double verify_seconds_total = 0.0;
    std::size_t peak_resident_bytes = 0;
    /// Marking-store shape of the exploration that owns
    /// peak_resident_bytes — the rap_store_* gauges describe the sweep's
    /// biggest state space, the one capacity planning cares about.
    std::optional<petri::StoreStats> peak_store;
    /// Passes that requested cross-pass reuse but ran scratch.
    std::size_t reuse_fallbacks_total = 0;
    std::size_t por_active_configs = 0;  ///< rows whose pass reduced
    std::size_t por_enabled_total = 0;   ///< full-exploration work
    std::size_t por_expanded_total = 0;  ///< work actually done
    bool joined = false;
};

namespace {

/// Runs one grid point start to finish. Never throws: every failure mode
/// maps to a row status.
SweepResult process_point(SweepState& state, const SweepPoint& point,
                          const std::shared_ptr<petri::ReuseStore>& reuse) {
    SweepResult row;
    row.point = point;

    // The schedule axis' analytic figure of merit is defined even for
    // configurations the factory rejects.
    if (point.schedule < state.schedules.size()) {
        row.schedule_finish_s =
            state.schedules[point.schedule].finish_time(
                tech::VoltageModel(state.base.process), 0.0, 1.0);
    }

    if (state.cancelled.load(std::memory_order_relaxed)) {
        row.status = SweepStatus::kCancelled;
        return row;
    }

    std::optional<pipeline::Pipeline> model;
    try {
        model.emplace(state.factory(point.stages, point.depth));
    } catch (const std::exception& e) {
        row.status = SweepStatus::kInvalid;
        row.error = e.what();
        return row;
    }

    // Dedup bookkeeping + pin: the cache coalesces concurrent builds of
    // the same content, and the pin keeps LRU eviction off this model
    // until the session below is done with it.
    const std::string key = verify::model_fingerprint(model->graph);
    {
        const std::lock_guard<std::mutex> lock(state.mutex);
        state.distinct.insert(key);
    }

    const auto deadline =
        state.timeout_s > 0.0
            ? std::chrono::steady_clock::now() +
                  std::chrono::duration_cast<
                      std::chrono::steady_clock::duration>(
                      std::chrono::duration<double>(state.timeout_s))
            : std::chrono::steady_clock::time_point::max();

    DesignOptions options = state.base;
    if (options.verify.threads == 0) {
        // Grid-level parallelism owns the cores; explicit base settings
        // are respected.
        options.verify.threads = 1;
    }
    if (reuse != nullptr) {
        // Shared-store chain: this point re-claims what the chain's
        // earlier depths interned. Sound because the chain runs on one
        // worker, one point at a time.
        options.verify.reuse = reuse;
    }
    const std::function<bool()> user_stop = options.verify.stop;
    options.verify.stop = [&state, deadline, user_stop] {
        return state.cancelled.load(std::memory_order_relaxed) ||
               std::chrono::steady_clock::now() >= deadline ||
               (user_stop && user_stop());
    };
    if (!state.checkpoint_dir.empty()) {
        // `<dir>/<label>.ckpt` with the grid label's slashes flattened
        // ("s4/d3/v0" -> "s4_d3_v0") so every point is one file.
        std::string name = point.label;
        std::replace(name.begin(), name.end(), '/', '_');
        options.verify.checkpoint_path =
            state.checkpoint_dir + "/" + name + ".ckpt";
    }

    // The session outlives the try: a pass that dies mid-exploration
    // still has a real interned footprint (petri::ExplorationAborted
    // carries it into Design::memory_stats()), and dropping it here used
    // to under-report the sweep's peak-resident aggregate.
    std::unique_ptr<Design> design;
    try {
        const auto pin =
            verify::ArtifactCache::process_cache().get_pinned(model->graph);
        design = make_design(std::move(*model), options);

        const auto t0 = std::chrono::steady_clock::now();
        row.report = design->verify(state.spec);
        const auto t1 = std::chrono::steady_clock::now();

        row.verify_seconds =
            std::chrono::duration<double>(t1 - t0).count();
        row.clean = row.report.clean();
        for (const auto& finding : row.report.findings) {
            row.states = std::max(row.states, finding.states_explored);
        }
        row.memory = design->memory_stats();
        row.por = design->por_stats();
        row.reuse_fallbacks = design->reuse_fallbacks();

        bool truncated_by_stop = false;
        for (const auto& finding : row.report.findings) {
            truncated_by_stop |= finding.truncated;
        }
        if (state.cancelled.load(std::memory_order_relaxed)) {
            row.status = SweepStatus::kCancelled;
        } else if (truncated_by_stop && t1 >= deadline) {
            row.status = SweepStatus::kTimedOut;
        } else {
            row.status = SweepStatus::kOk;
        }
    } catch (const std::exception& e) {
        row.status = SweepStatus::kInvalid;
        row.error = e.what();
        if (design) {
            // Salvage whatever the dead pass measured before it threw.
            row.memory = design->memory_stats();
            row.por = design->por_stats();
            row.reuse_fallbacks = design->reuse_fallbacks();
        }
    }
    return row;
}

void run_point(SweepState& state, std::size_t index,
               const std::shared_ptr<petri::ReuseStore>& reuse) {
    {
        std::unique_lock<std::mutex> lock(state.mutex);
        state.gate.wait(lock, [&] {
            return state.in_flight < state.max_in_flight ||
                   state.cancelled.load(std::memory_order_relaxed);
        });
        ++state.in_flight;
    }

    SweepResult row = process_point(state, state.grid[index], reuse);

    {
        const std::lock_guard<std::mutex> lock(state.mutex);
        --state.in_flight;
        state.states_total += row.states;
        state.verify_seconds_total += row.verify_seconds;
        if (row.memory) {
            if (row.memory->peak_bytes >= state.peak_resident_bytes) {
                state.peak_store = row.memory->store;
            }
            state.peak_resident_bytes = std::max(
                state.peak_resident_bytes, row.memory->peak_bytes);
        }
        state.reuse_fallbacks_total += row.reuse_fallbacks;
        if (row.por && row.por->active) {
            ++state.por_active_configs;
            state.por_enabled_total += row.por->enabled_transitions;
            state.por_expanded_total += row.por->expanded_transitions;
        }
        state.results[index] = std::move(row);
        ++state.done;
        // cancel() flips the flag under this same mutex, so once it
        // returns no further callback can be entered.
        if (!state.cancelled.load(std::memory_order_relaxed) &&
            state.callback) {
            state.callback(state.results[index]);
        }
    }
    state.gate.notify_one();
}

void worker_loop(const std::shared_ptr<SweepState>& state) {
    // The scheduling unit is a grid point, or — in shared-store mode — a
    // whole (stages, schedule) chain whose points share one ReuseStore
    // and therefore must run one at a time, in depth order.
    const bool chained = !state->chains.empty();
    const std::size_t tasks =
        chained ? state->chains.size() : state->grid.size();
    for (;;) {
        const std::size_t task =
            state->next.fetch_add(1, std::memory_order_relaxed);
        if (task >= tasks) return;
        if (chained) {
            const auto reuse = std::make_shared<petri::ReuseStore>();
            for (const std::size_t index : state->chains[task]) {
                run_point(*state, index, reuse);
            }
        } else {
            run_point(*state, task, nullptr);
        }
    }
}

void join_pool(SweepState& state) {
    {
        const std::lock_guard<std::mutex> lock(state.mutex);
        if (state.joined) return;
        state.joined = true;
    }
    for (std::thread& worker : state.pool) {
        if (worker.joinable()) worker.join();
    }
}

Metrics build_metrics(SweepState& state) {
    Metrics m;
    using Type = Metrics::Type;

    std::size_t done = 0;
    std::size_t in_flight = 0;
    std::size_t distinct = 0;
    std::size_t states_total = 0;
    double verify_seconds = 0.0;
    std::size_t peak = 0;
    std::optional<petri::StoreStats> peak_store;
    std::size_t reuse_fallbacks = 0;
    std::size_t por_active = 0;
    std::size_t por_enabled = 0;
    std::size_t por_expanded = 0;
    {
        const std::lock_guard<std::mutex> lock(state.mutex);
        done = state.done;
        in_flight = state.in_flight;
        distinct = state.distinct.size();
        states_total = state.states_total;
        verify_seconds = state.verify_seconds_total;
        peak = state.peak_resident_bytes;
        peak_store = state.peak_store;
        reuse_fallbacks = state.reuse_fallbacks_total;
        por_active = state.por_active_configs;
        por_enabled = state.por_enabled_total;
        por_expanded = state.por_expanded_total;
    }
    const std::size_t total = state.grid.size();
    const std::size_t queued = total - std::min(total, done + in_flight);

    m.set("rap_sweep_configs_total",
          "Grid points in the sweep", Type::kGauge,
          static_cast<double>(total));
    m.set("rap_sweep_configs_done",
          "Grid points completed so far", Type::kGauge,
          static_cast<double>(done));
    m.set("rap_sweep_queue_depth",
          "Grid points neither done nor running", Type::kGauge,
          static_cast<double>(queued));
    m.set("rap_sweep_in_flight",
          "Configurations holding exploration state right now",
          Type::kGauge, static_cast<double>(in_flight));
    m.set("rap_sweep_cancelled",
          "1 once Handle::cancel() was called", Type::kGauge,
          state.cancelled.load(std::memory_order_relaxed) ? 1.0 : 0.0);
    m.set("rap_sweep_distinct_models",
          "Distinct model contents seen (the dedup denominator)",
          Type::kGauge, static_cast<double>(distinct));
    m.set("rap_sweep_states_total",
          "States explored across all completed configurations",
          Type::kCounter, static_cast<double>(states_total));
    m.set("rap_sweep_verify_seconds_total",
          "Wall seconds spent verifying across all configurations",
          Type::kCounter, verify_seconds);
    m.set("rap_sweep_states_per_second",
          "Aggregate verification throughput", Type::kGauge,
          verify_seconds > 0.0
              ? static_cast<double>(states_total) / verify_seconds
              : 0.0);
    m.set("rap_sweep_peak_resident_bytes",
          "Largest single-exploration resident footprint seen",
          Type::kGauge, static_cast<double>(peak));
    m.set("rap_reuse_fallbacks_total",
          "Passes that requested cross-pass reuse but ran scratch",
          Type::kCounter, static_cast<double>(reuse_fallbacks));

    // Marking-store shape of the peak-resident exploration — the
    // capacity-tier surface (table vs arena split, load factor, layout).
    if (peak_store) {
        m.set("rap_store_slots",
              "Hash-table slots of the peak-resident exploration's store",
              Type::kGauge, static_cast<double>(peak_store->slots));
        m.set("rap_store_load_factor",
              "Records / slots of the peak-resident exploration's store",
              Type::kGauge, peak_store->load_factor());
        m.set("rap_store_table_bytes",
              "Hash-table bytes of the peak-resident exploration's store",
              Type::kGauge, static_cast<double>(peak_store->table_bytes));
        m.set("rap_store_arena_bytes",
              "Record-arena bytes of the peak-resident exploration's store",
              Type::kGauge, static_cast<double>(peak_store->arena_bytes));
        m.set("rap_store_compact",
              "1 when the peak-resident exploration used the compact "
              "(id-less) interning layout",
              Type::kGauge, peak_store->compact ? 1.0 : 0.0);
    }

    // Partial-order reduction aggregates across completed rows. The
    // ratio compares transition-expansion work, the quantity reduction
    // actually saves (state counts are a second-order consequence).
    m.set("rap_por_active_configs",
          "Completed configurations whose pass ran with reduction",
          Type::kGauge, static_cast<double>(por_active));
    m.set("rap_por_enabled_transitions_total",
          "Enabled transitions across expanded states (full-exploration "
          "work)",
          Type::kCounter, static_cast<double>(por_enabled));
    m.set("rap_por_expanded_transitions_total",
          "Transitions actually expanded under reduction",
          Type::kCounter, static_cast<double>(por_expanded));
    m.set("rap_por_ignored_transitions_total",
          "Enabled transitions skipped thanks to reduction",
          Type::kCounter,
          static_cast<double>(por_enabled -
                              std::min(por_enabled, por_expanded)));
    m.set("rap_por_reduction_ratio",
          "Enabled / expanded transition work across reduced passes",
          Type::kGauge,
          por_expanded > 0
              ? static_cast<double>(por_enabled) /
                    static_cast<double>(por_expanded)
              : 0.0);

    // Process artifact-cache counters, as deltas since launch so the
    // exposition describes THIS sweep's traffic.
    const verify::CacheStats now = verify::cache_stats();
    const verify::CacheStats& before = state.cache_before;
    const auto delta = [](std::size_t a, std::size_t b) {
        return static_cast<double>(a - std::min(a, b));
    };
    char shard_label[16];
    for (std::size_t i = 0; i < now.shards.size(); ++i) {
        std::snprintf(shard_label, sizeof(shard_label), "%zu", i);
        const Metrics::Labels labels{{"shard", shard_label}};
        const std::size_t before_hits =
            i < before.shards.size() ? before.shards[i].hits : 0;
        const std::size_t before_misses =
            i < before.shards.size() ? before.shards[i].misses : 0;
        const std::size_t before_evictions =
            i < before.shards.size() ? before.shards[i].evictions : 0;
        m.set("rap_cache_hits_total",
              "Artifact cache hits since the sweep launched, per shard",
              Type::kCounter, delta(now.shards[i].hits, before_hits),
              labels);
        m.set("rap_cache_misses_total",
              "Artifact cache misses (= builds) since the sweep "
              "launched, per shard",
              Type::kCounter, delta(now.shards[i].misses, before_misses),
              labels);
        m.set("rap_cache_evictions_total",
              "Artifact cache LRU evictions since the sweep launched, "
              "per shard",
              Type::kCounter,
              delta(now.shards[i].evictions, before_evictions), labels);
    }
    const double hits = delta(now.hits, before.hits);
    const double misses = delta(now.misses, before.misses);
    m.set("rap_cache_hit_rate",
          "Hits / lookups of the artifact cache since the sweep launched",
          Type::kGauge,
          hits + misses > 0.0 ? hits / (hits + misses) : 0.0);
    m.set("rap_cache_entries", "Artifacts resident in the cache",
          Type::kGauge, static_cast<double>(now.entries));
    m.set("rap_cache_resident_bytes",
          "Approximate bytes held by cached artifacts", Type::kGauge,
          static_cast<double>(now.bytes));
    m.set("rap_cache_capacity_bytes", "Artifact cache byte capacity",
          Type::kGauge, static_cast<double>(now.capacity_bytes));
    m.set("rap_cache_pinned", "Artifacts pinned by in-flight sessions",
          Type::kGauge, static_cast<double>(now.pinned));
    return m;
}

}  // namespace
}  // namespace detail

// -- Sweep (builder) -----------------------------------------------------

Sweep::Sweep(Factory factory, DesignOptions base)
    : factory_(std::move(factory)),
      base_(std::move(base)),
      spec_(verify::Spec::standard()) {
    if (!factory_) {
        throw std::invalid_argument(
            "flow::Sweep: the model factory must be callable");
    }
    validate_options(base_);
    // Sweeps verify with partial-order reduction by default: verdicts
    // are preserved and every configuration explores a smaller graph.
    // Sweep::por(false) restores full explorations.
    base_.verify.por = true;
    schedules_.push_back(
        tech::VoltageSchedule::constant(base_.process.v_nominal));
}

Sweep Sweep::ope(DesignOptions base) {
    return Sweep(
        [](int stages, int depth) {
            return ope::build_reconfigurable_ope_dfs(stages, depth);
        },
        std::move(base));
}

Sweep& Sweep::depths(int lo, int hi) {
    depths_.clear();
    for (int d = lo; d <= hi; ++d) depths_.push_back(d);
    if (depths_.empty()) {
        throw std::invalid_argument("flow::Sweep: empty depth range");
    }
    return *this;
}

Sweep& Sweep::depths(std::vector<int> values) {
    if (values.empty()) {
        throw std::invalid_argument("flow::Sweep: empty depth axis");
    }
    depths_ = std::move(values);
    return *this;
}

Sweep& Sweep::stages(std::vector<int> values) {
    if (values.empty()) {
        throw std::invalid_argument("flow::Sweep: empty stage axis");
    }
    stages_ = std::move(values);
    return *this;
}

Sweep& Sweep::schedules(std::vector<tech::VoltageSchedule> values) {
    if (values.empty()) {
        throw std::invalid_argument("flow::Sweep: empty schedule axis");
    }
    schedules_ = std::move(values);
    return *this;
}

Sweep& Sweep::spec(verify::Spec value) {
    spec_ = std::move(value);
    return *this;
}

Sweep& Sweep::por(bool enabled) {
    base_.verify.por = enabled;
    return *this;
}

Sweep& Sweep::workers(std::size_t count) {
    workers_ = count;
    return *this;
}

Sweep& Sweep::max_in_flight(std::size_t count) {
    max_in_flight_ = count;
    return *this;
}

Sweep& Sweep::per_config_timeout(double seconds) {
    timeout_s_ = seconds;
    return *this;
}

Sweep& Sweep::shared_store(bool enabled) {
    shared_store_ = enabled;
    return *this;
}

Sweep& Sweep::checkpoint_dir(std::string dir) {
    checkpoint_dir_ = std::move(dir);
    return *this;
}

Sweep& Sweep::on_result(ResultCallback callback) {
    callback_ = std::move(callback);
    return *this;
}

std::vector<SweepPoint> Sweep::grid() const {
    std::vector<SweepPoint> points;
    points.reserve(stages_.size() * depths_.size() * schedules_.size());
    char label[64];
    for (const int stages : stages_) {
        for (const int depth : depths_) {
            for (std::size_t schedule = 0; schedule < schedules_.size();
                 ++schedule) {
                std::snprintf(label, sizeof(label), "s%d/d%d/v%zu",
                              stages, depth, schedule);
                points.push_back(SweepPoint{points.size(), stages, depth,
                                            schedule, label});
            }
        }
    }
    return points;
}

// -- Sweep::Handle -------------------------------------------------------

Sweep::Handle::Handle(std::shared_ptr<detail::SweepState> state)
    : state_(std::move(state)) {}

Sweep::Handle::~Handle() {
    if (state_) detail::join_pool(*state_);
}

void Sweep::Handle::cancel() {
    {
        const std::lock_guard<std::mutex> lock(state_->mutex);
        state_->cancelled.store(true, std::memory_order_relaxed);
    }
    state_->gate.notify_all();
}

bool Sweep::Handle::cancelled() const {
    return state_->cancelled.load(std::memory_order_relaxed);
}

std::size_t Sweep::Handle::done() const {
    const std::lock_guard<std::mutex> lock(state_->mutex);
    return state_->done;
}

std::size_t Sweep::Handle::total() const { return state_->grid.size(); }

std::size_t Sweep::Handle::distinct_models() const {
    const std::lock_guard<std::mutex> lock(state_->mutex);
    return state_->distinct.size();
}

Metrics Sweep::Handle::metrics() const {
    return detail::build_metrics(*state_);
}

std::vector<SweepResult> Sweep::Handle::wait() {
    detail::join_pool(*state_);
    return std::move(state_->results);
}

// -- launch --------------------------------------------------------------

Sweep::Handle Sweep::launch() {
    auto state = std::make_shared<detail::SweepState>();
    state->factory = factory_;
    state->base = base_;
    state->spec = spec_;
    state->grid = grid();
    state->schedules = schedules_;
    state->timeout_s = timeout_s_;
    state->callback = callback_;
    state->checkpoint_dir = checkpoint_dir_;
    state->cache_before = verify::cache_stats();
    if (shared_store_ && !checkpoint_dir_.empty()) {
        throw std::invalid_argument(
            "flow::Sweep: checkpoint_dir is incompatible with "
            "shared_store — the engines refuse to checkpoint a "
            "cross-pass ReuseStore, so every chained point would come "
            "back kInvalid");
    }

    if (shared_store_) {
        // One chain per (stages, schedule) pair; the grid is ordered
        // stages -> depth -> schedule, so pushing indices in grid order
        // leaves each chain sorted by depth.
        std::map<std::pair<int, std::size_t>, std::size_t> chain_of;
        for (std::size_t i = 0; i < state->grid.size(); ++i) {
            const SweepPoint& p = state->grid[i];
            const auto key = std::make_pair(p.stages, p.schedule);
            auto it = chain_of.find(key);
            if (it == chain_of.end()) {
                it = chain_of.emplace(key, state->chains.size()).first;
                state->chains.emplace_back();
            }
            state->chains[it->second].push_back(i);
        }
    }

    std::size_t workers = workers_;
    if (workers == 0) {
        workers = std::max(1u, std::thread::hardware_concurrency());
    }
    const std::size_t schedulable =
        shared_store_ ? state->chains.size() : state->grid.size();
    workers = std::max<std::size_t>(1, std::min(workers, schedulable));
    state->max_in_flight =
        max_in_flight_ > 0 ? std::min(max_in_flight_, workers) : workers;

    state->results.resize(state->grid.size());
    // Pre-fill every slot's point so cancelled-before-start rows still
    // identify themselves; workers overwrite the slots they process.
    for (std::size_t i = 0; i < state->grid.size(); ++i) {
        state->results[i].point = state->grid[i];
        state->results[i].status = SweepStatus::kCancelled;
    }

    state->pool.reserve(workers);
    for (std::size_t i = 0; i < workers; ++i) {
        state->pool.emplace_back(
            [state] { detail::worker_loop(state); });
    }
    return Handle(std::move(state));
}

std::vector<SweepResult> Sweep::run() { return launch().wait(); }

}  // namespace rap::flow
