#pragma once

#include <cstddef>
#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "flow/design.hpp"
#include "flow/metrics.hpp"
#include "pipeline/builder.hpp"
#include "tech/voltage.hpp"
#include "verify/spec.hpp"

namespace rap::flow {

namespace detail {
struct SweepState;
}

/// One point of a sweep's parameter grid, in stable grid order (stages
/// outermost, then depth, then voltage schedule).
struct SweepPoint {
    std::size_t index = 0;  ///< position in the expanded grid
    int stages = 0;
    int depth = 0;
    std::size_t schedule = 0;  ///< index into the schedules() axis
    std::string label;         ///< "s4/d3/v1"
};

enum class SweepStatus {
    kOk,         ///< verified (report may still be truncated by max_states)
    kInvalid,    ///< factory/options rejected the configuration
    kTimedOut,   ///< per-config timeout stopped the exploration
    kCancelled,  ///< Handle::cancel() hit before/while this config ran
};

std::string_view to_string(SweepStatus status);

/// One completed grid point, streamed through the on_result callback as
/// it finishes and collected (in grid order) by Handle::wait().
struct SweepResult {
    SweepPoint point;
    SweepStatus status = SweepStatus::kOk;
    std::string error;      ///< what() of the rejecting exception (kInvalid)
    verify::Report report;  ///< findings (kOk; truncated ones on kTimedOut)
    bool clean = false;     ///< report.clean() shortcut
    std::size_t states = 0;           ///< states explored by the pass
    double verify_seconds = 0.0;      ///< wall time of the verification
    /// Exploration footprint. Present on kOk and kTimedOut rows, and on
    /// kInvalid rows whose exploration died mid-pass (the partial pass's
    /// interned footprint is real and counts toward the sweep's
    /// peak-resident aggregate) — absent only when no exploration ran at
    /// all (factory rejection, cancellation before start).
    std::optional<petri::MemoryStats> memory;
    /// Passes of this row's session that requested cross-pass reuse but
    /// ran scratch (shared-store chains gone cold after a topology
    /// change) — aggregated into rap_reuse_fallbacks_total.
    std::size_t reuse_fallbacks = 0;
    /// Partial-order-reduction statistics of the verification pass
    /// (sweeps verify with reduction on by default — Sweep::por()).
    std::optional<petri::PorStats> por;
    /// Wall seconds for one nominal-speed second of work under this
    /// point's voltage schedule (+inf when the supply never recovers
    /// above the freeze voltage) — the schedule axis' figure of merit.
    double schedule_finish_s = 0.0;
};

/// Batch design-space sweep driver: the paper's verification flow as a
/// high-traffic workload. A fluent grid builder expands depth × stage
/// count × voltage schedule into configurations, schedules one
/// flow::Design session per configuration over a worker pool, and
/// streams SweepResult rows as they complete:
///
///     auto results =
///         flow::Sweep::ope()                 // reconfigurable OPE factory
///             .stages({3, 4, 5})
///             .depths(1, 6)                  // invalid combos -> kInvalid
///             .schedules({nominal, droop})
///             .workers(4)
///             .on_result([](const flow::SweepResult& r) { ... })
///             .run();
///
/// Scaling contract:
///
/// - **Dedup before compile.** Configurations are content-keyed
///   (verify::model_fingerprint); the sharded verify::ArtifactCache
///   coalesces concurrent builds, so identical models reached through
///   different grid points (e.g. the same depth under two voltage
///   schedules) compile exactly once — artifact_builds() grows by the
///   number of *distinct* models, not grid points.
/// - **Pinned artifacts.** Each worker pins its configuration's
///   compiled model while the session runs, so LRU eviction under a
///   tight cache capacity can never drop an artifact a worker is about
///   to use.
/// - **Bounded in-flight memory.** At most workers() (further capped by
///   max_in_flight()) sessions hold exploration state simultaneously;
///   per-config engine threads default to 1 inside a sweep (grid-level
///   parallelism owns the cores — set base.verify.threads explicitly to
///   override).
/// - **Cooperative cancellation + timeouts.** Handle::cancel() stops
///   new work and interrupts running explorations through the engines'
///   stop hook; per_config_timeout() bounds each configuration the same
///   way (status kTimedOut, findings truncated).
///
/// Results arrive through on_result in completion order (never after
/// cancel() returns) and from Handle::wait() as one vector in stable
/// grid order.
class Sweep {
public:
    /// Builds the model of one configuration. Throwing (e.g. an invalid
    /// stages/depth combination) marks that grid point kInvalid with the
    /// exception's message — the validity gate of the grid.
    using Factory = std::function<pipeline::Pipeline(int stages, int depth)>;
    using ResultCallback = std::function<void(const SweepResult&)>;

    explicit Sweep(Factory factory, DesignOptions base = {});

    /// Sweep over the paper's reconfigurable OPE pipeline
    /// (ope::build_reconfigurable_ope_dfs as the factory; depths below
    /// ope::min_depth() or above the stage count come back kInvalid).
    static Sweep ope(DesignOptions base = {});

    // -- grid axes (empty axis = the base factory defaults below) -------

    Sweep& depths(int lo, int hi);  ///< inclusive range
    Sweep& depths(std::vector<int> values);
    Sweep& stages(std::vector<int> values);
    Sweep& schedules(std::vector<tech::VoltageSchedule> values);

    // -- per-configuration behaviour ------------------------------------

    /// Properties each configuration verifies (default Spec::standard()).
    Sweep& spec(verify::Spec value);
    /// Partial-order reduction for the per-configuration verifications.
    /// Defaults to ON inside sweeps (it preserves every verdict while
    /// shrinking the explored graph — see VerifyOptions::por), overriding
    /// the base options; pass false to measure full explorations.
    Sweep& por(bool enabled);
    /// Worker pool size; 0 (default) = one per hardware thread, capped
    /// at the grid size.
    Sweep& workers(std::size_t count);
    /// Cap on configurations holding exploration state at once
    /// (default: the worker count).
    Sweep& max_in_flight(std::size_t count);
    /// Wall-clock budget per configuration; <= 0 (default) = none.
    Sweep& per_config_timeout(double seconds);
    /// Incremental re-verification across the depth axis: grid points
    /// sharing (stages, schedule) form a chain that runs on ONE worker,
    /// in depth order, with one shared petri::ReuseStore — each depth's
    /// verification re-claims the markings and enabled rows the chain's
    /// earlier depths already interned, so a d=1..N chain costs about as
    /// much interning as its deepest configuration alone. Verdicts and
    /// reports are bit-identical to the independent-session default.
    /// Chains are the unit of scheduling here (distinct chains still run
    /// in parallel), so a single-chain grid serialises; leave this off
    /// (the default) when grid-level parallelism matters more than
    /// cross-depth reuse.
    Sweep& shared_store(bool enabled);
    /// Per-configuration checkpointing: each grid point's exploration
    /// periodically serializes a petri::StoreCheckpoint to
    /// `<dir>/<label>.ckpt` (grid labels like "s4/d3/v0" are flattened to
    /// "s4_d3_v0"), so a killed sweep resumes its longest configurations
    /// instead of rerunning them (the nightly soak wires this to CI
    /// artifacts). The directory must exist. Empty (default) = off.
    /// Incompatible with shared_store (the engines refuse reuse +
    /// checkpoint, so launch() rejects the combination up front with
    /// std::invalid_argument).
    Sweep& checkpoint_dir(std::string dir);
    /// Streaming sink, invoked from worker threads (serialised — at most
    /// one callback at a time) as rows complete. The callback must not
    /// call back into the Handle (it runs under the sweep's result lock).
    Sweep& on_result(ResultCallback callback);

    /// The expanded grid in stable order, without running anything.
    std::vector<SweepPoint> grid() const;

    /// A launched sweep. Movable handle over shared state; the
    /// destructor waits for the pool (call cancel() first to end early).
    class Handle {
    public:
        Handle(Handle&&) noexcept = default;
        Handle& operator=(Handle&&) noexcept = default;
        Handle(const Handle&) = delete;
        Handle& operator=(const Handle&) = delete;
        ~Handle();

        /// Cooperative cancellation: no new configurations start,
        /// running explorations stop at their next poll, and once
        /// cancel() returns no further on_result callbacks fire.
        /// Unfinished grid points report kCancelled.
        void cancel();
        bool cancelled() const;

        std::size_t done() const;   ///< rows completed so far
        std::size_t total() const;  ///< grid size

        /// Distinct model contents seen so far (the dedup denominator:
        /// artifact builds can never exceed this).
        std::size_t distinct_models() const;

        /// Scrapeable engine metrics snapshot: sweep progress (configs
        /// done/total, queue depth, in-flight), aggregate states/s and
        /// peak resident bytes, and the process artifact cache's
        /// per-shard hit/miss/eviction counters — render with
        /// metrics::to_prometheus().
        Metrics metrics() const;

        /// Joins the pool and returns every row in stable grid order.
        /// Call at most once; the pool is joined either way.
        std::vector<SweepResult> wait();

    private:
        friend class Sweep;
        explicit Handle(std::shared_ptr<detail::SweepState> state);

        std::shared_ptr<detail::SweepState> state_;
    };

    /// Starts the worker pool and returns immediately.
    Handle launch();

    /// launch() + wait(): the whole grid, rows in stable grid order.
    std::vector<SweepResult> run();

private:
    Factory factory_;
    DesignOptions base_;
    verify::Spec spec_;
    std::vector<int> depths_{1};
    std::vector<int> stages_{1};
    std::vector<tech::VoltageSchedule> schedules_;
    std::size_t workers_ = 0;
    std::size_t max_in_flight_ = 0;
    double timeout_s_ = 0.0;
    bool shared_store_ = false;
    std::string checkpoint_dir_;
    ResultCallback callback_;
};

}  // namespace rap::flow
