#include "flow/design.hpp"

#include <stdexcept>

#include "dfs/dot.hpp"
#include "netlist/verilog.hpp"
#include "petri/astg.hpp"

namespace rap::flow {

Design::Design(dfs::Graph graph, DesignOptions options)
    : options_(std::move(options)), graph_(std::move(graph)) {}

Design::Design(pipeline::Pipeline pipeline, DesignOptions options)
    : options_(std::move(options)), pipeline_(std::move(pipeline)) {}

const dfs::Graph& Design::graph() const noexcept {
    return pipeline_ ? pipeline_->graph : *graph_;
}

dfs::Graph& Design::graph_mut() noexcept {
    return pipeline_ ? pipeline_->graph : *graph_;
}

const pipeline::Pipeline& Design::pipeline() const {
    if (!pipeline_) {
        throw std::logic_error("flow::Design '" + name() +
                               "' does not wrap a pipeline");
    }
    return *pipeline_;
}

// -- invalidation --------------------------------------------------------

void Design::invalidate_marking_artifacts() {
    ++revision_;
    // The PN translation encodes the initial marking; the verifier holds
    // the compiled artifact. Dynamics, netlist and timing read only the
    // structure and survive reconfiguration.
    model_.reset();
    verifier_.reset();
}

void Design::invalidate_all_artifacts() {
    invalidate_marking_artifacts();
    dynamics_.reset();
    netlist_.reset();
    timing_.reset();
}

void Design::set_depth(int depth) {
    if (!pipeline_) {
        throw std::logic_error("flow::Design '" + name() +
                               "': set_depth needs a pipeline-backed design");
    }
    pipeline::set_depth(*pipeline_, depth);
    invalidate_marking_artifacts();
}

void Design::set_initial(dfs::NodeId node, bool marked,
                         dfs::TokenValue token) {
    graph_mut().set_initial(node, marked, token);
    invalidate_marking_artifacts();
}

void Design::reset_ring(const pipeline::ControlRing& ring,
                        dfs::TokenValue polarity) {
    pipeline::reset_ring(graph_mut(), ring, polarity);
    invalidate_marking_artifacts();
}

dfs::Graph& Design::edit() {
    invalidate_all_artifacts();
    return graph_mut();
}

// -- artifacts -----------------------------------------------------------

const dfs::Dynamics& Design::dynamics() const {
    if (!dynamics_) dynamics_.emplace(graph());
    return *dynamics_;
}

std::shared_ptr<const verify::CompiledModel> Design::compiled_model() const {
    if (!model_) {
        // compile_model may still serve the artifact from the process
        // cache (e.g. a sibling session over the same model content);
        // pn_builds_ counts this design's cache misses.
        model_ = verify::compile_model(graph());
        ++pn_builds_;
    }
    return model_;
}

const dfs::Translation& Design::translation() const {
    return compiled_model()->translation();
}

const petri::CompiledNet& Design::compiled_net() const {
    return compiled_model()->compiled();
}

const verify::Verifier& Design::verifier() const {
    if (!verifier_) {
        verifier_.emplace(graph(), compiled_model(), options_.verify);
    }
    return *verifier_;
}

const netlist::Netlist& Design::netlist() const {
    if (!netlist_) {
        netlist_ = std::make_unique<netlist::Netlist>(
            graph(), netlist::Library(options_.library));
        ++netlist_builds_;
    }
    return *netlist_;
}

const asim::TimingMap& Design::timing() const {
    if (!timing_) timing_ = netlist().timing();
    return *timing_;
}

// -- verification --------------------------------------------------------

verify::Report Design::verify() const {
    return verifier().verify_all();
}

verify::Report Design::verify(const verify::Spec& spec) const {
    return verifier().verify(spec);
}

const petri::MemoryStats& Design::memory_stats() const {
    return verifier().memory_stats();
}

// -- simulation ----------------------------------------------------------

dfs::State Design::initial_state() const {
    return dfs::State::initial(graph());
}

dfs::Simulator Design::simulator(std::uint64_t seed) const {
    return dfs::Simulator(dynamics(), seed);
}

asim::TimedSimulator Design::timed_sim(tech::VoltageSchedule schedule) const {
    return asim::TimedSimulator(dynamics(), timing(),
                                tech::VoltageModel(options_.process),
                                std::move(schedule),
                                netlist().total_gates());
}

asim::TimedSimulator Design::timed_sim() const {
    return timed_sim(
        tech::VoltageSchedule::constant(options_.process.v_nominal));
}

// -- exports -------------------------------------------------------------

std::string Design::to_dot() const { return dfs::to_dot(graph()); }

std::string Design::to_astg() const {
    return petri::to_astg(translation().net);
}

std::string Design::to_verilog() const {
    return netlist::to_verilog(netlist());
}

}  // namespace rap::flow
