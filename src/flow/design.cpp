#include "flow/design.hpp"

#include <stdexcept>

#include "dfs/dot.hpp"
#include "netlist/verilog.hpp"
#include "petri/astg.hpp"
#include "petri/reuse.hpp"

namespace rap::flow {

void validate_options(const DesignOptions& options) {
    if (options.verify.max_states == 0) {
        throw std::invalid_argument(
            "flow::DesignOptions: verify.max_states must be positive — a "
            "zero state cap would truncate every exploration at the "
            "initial marking and make all verdicts inconclusive");
    }
    const tech::ProcessParams& p = options.process;
    if (!(p.v_freeze >= 0.0)) {
        throw std::invalid_argument(
            "flow::DesignOptions: process.v_freeze must be >= 0 V");
    }
    if (!(p.v_nominal > p.v_freeze)) {
        throw std::invalid_argument(
            "flow::DesignOptions: process.v_nominal must exceed "
            "process.v_freeze — at or below the freeze voltage the model "
            "makes no forward progress, so a nominal supply there means "
            "every timed simulation hangs");
    }
    if (!(p.v_max >= p.v_nominal)) {
        throw std::invalid_argument(
            "flow::DesignOptions: process.v_max must be >= "
            "process.v_nominal (the absolute maximum rating cannot sit "
            "below the nominal supply)");
    }
    if (!(p.alpha > 0.0)) {
        throw std::invalid_argument(
            "flow::DesignOptions: process.alpha (the alpha-power-law "
            "exponent) must be positive");
    }
}

Design::Design(dfs::Graph graph, DesignOptions options)
    : options_(std::move(options)), graph_(std::move(graph)) {
    validate_options(options_);
}

Design::Design(pipeline::Pipeline pipeline, DesignOptions options)
    : options_(std::move(options)), pipeline_(std::move(pipeline)) {
    validate_options(options_);
}

std::unique_ptr<Design> make_design(dfs::Graph graph,
                                    DesignOptions options) {
    return std::make_unique<Design>(std::move(graph), std::move(options));
}

std::unique_ptr<Design> make_design(pipeline::Pipeline pipeline,
                                    DesignOptions options) {
    return std::make_unique<Design>(std::move(pipeline),
                                    std::move(options));
}

const dfs::Graph& Design::graph() const noexcept {
    return pipeline_ ? pipeline_->graph : *graph_;
}

dfs::Graph& Design::graph_mut() noexcept {
    return pipeline_ ? pipeline_->graph : *graph_;
}

const pipeline::Pipeline& Design::pipeline() const {
    if (!pipeline_) {
        throw std::logic_error("flow::Design '" + name() +
                               "' does not wrap a pipeline");
    }
    return *pipeline_;
}

// -- invalidation --------------------------------------------------------

void Design::flush_verifier() const {
    if (!verifier_) return;
    // The verifier is about to be dropped: fold its observable state
    // into the session accumulators so counters and stats never appear
    // to go backwards across a rebuild.
    reuse_fallbacks_ += verifier_->reuse_fallbacks();
    if (verifier_->has_memory_stats()) {
        last_memory_ = verifier_->memory_stats();
    }
    if (verifier_->has_por_stats()) last_por_ = verifier_->por_stats();
    verifier_.reset();
}

void Design::invalidate_marking_artifacts() {
    ++revision_;
    // The PN translation encodes the initial marking; the verifier holds
    // the compiled artifact. Dynamics, netlist and timing read only the
    // structure and survive reconfiguration.
    model_.reset();
    flush_verifier();
}

void Design::invalidate_all_artifacts() {
    invalidate_marking_artifacts();
    dynamics_.reset();
    netlist_.reset();
    timing_.reset();
    // A structural edit must not hand cached enabled rows (or a warm
    // marking table sized for the old structure) to the next pass: drop
    // the session store so incremental verification restarts clean.
    // Reconfigurations deliberately do NOT reach here — keeping the
    // store across initial-marking changes is the whole point.
    reuse_.reset();
}

void Design::set_depth(int depth) {
    if (!pipeline_) {
        throw std::logic_error("flow::Design '" + name() +
                               "': set_depth needs a pipeline-backed design");
    }
    pipeline::set_depth(*pipeline_, depth);
    invalidate_marking_artifacts();
}

void Design::set_initial(dfs::NodeId node, bool marked,
                         dfs::TokenValue token) {
    graph_mut().set_initial(node, marked, token);
    invalidate_marking_artifacts();
}

void Design::reset_ring(const pipeline::ControlRing& ring,
                        dfs::TokenValue polarity) {
    pipeline::reset_ring(graph_mut(), ring, polarity);
    invalidate_marking_artifacts();
}

dfs::Graph& Design::edit() {
    invalidate_all_artifacts();
    return graph_mut();
}

// -- checkpointing --------------------------------------------------------

void Design::set_checkpoint(std::string path, std::size_t every) {
    options_.verify.checkpoint_path = std::move(path);
    options_.verify.checkpoint_every = every;
    // Option change, not a model mutation: only the verifier (which
    // snapshots VerifyOptions at build) rebuilds; revision() holds.
    flush_verifier();
}

void Design::set_resume(
    std::shared_ptr<const petri::StoreCheckpoint> resume) {
    options_.verify.resume = std::move(resume);
    flush_verifier();
}

std::size_t Design::reuse_fallbacks() const noexcept {
    return reuse_fallbacks_ +
           (verifier_ ? verifier_->reuse_fallbacks() : 0);
}

// -- artifacts -----------------------------------------------------------

const dfs::Dynamics& Design::dynamics() const {
    if (!dynamics_) dynamics_.emplace(graph());
    return *dynamics_;
}

std::shared_ptr<const verify::CompiledModel> Design::compiled_model() const {
    if (!model_) {
        // compile_model may still serve the artifact from the process
        // cache (e.g. a sibling session over the same model content);
        // pn_builds_ counts this design's cache misses.
        model_ = verify::compile_model(graph());
        ++pn_builds_;
    }
    return model_;
}

const dfs::Translation& Design::translation() const {
    return compiled_model()->translation();
}

const petri::CompiledNet& Design::compiled_net() const {
    return compiled_model()->compiled();
}

const verify::Verifier& Design::verifier() const {
    if (!verifier_) {
        verify::VerifyOptions vopts = options_.verify;
        if (options_.incremental && vopts.reuse == nullptr) {
            if (reuse_ == nullptr) {
                reuse_ = std::make_shared<petri::ReuseStore>();
            }
            vopts.reuse = reuse_;
        }
        verifier_.emplace(graph(), compiled_model(), vopts);
    }
    return *verifier_;
}

const netlist::Netlist& Design::netlist() const {
    if (!netlist_) {
        netlist_ = std::make_unique<netlist::Netlist>(
            graph(), netlist::Library(options_.library));
        ++netlist_builds_;
    }
    return *netlist_;
}

const asim::TimingMap& Design::timing() const {
    if (!timing_) timing_ = netlist().timing();
    return *timing_;
}

// -- verification --------------------------------------------------------

verify::Report Design::verify() const {
    verify::Report report = verifier().verify_all();
    last_memory_ = verifier().memory_stats();
    last_por_ = verifier().por_stats();
    return report;
}

verify::Report Design::verify(const verify::Spec& spec) const {
    verify::Report report = verifier().verify(spec);
    last_memory_ = verifier().memory_stats();
    last_por_ = verifier().por_stats();
    return report;
}

std::optional<petri::MemoryStats> Design::memory_stats() const {
    // Explorations driven directly through verifier() count too; pull
    // the freshest footprint before answering.
    if (verifier_ && verifier_->has_memory_stats()) {
        last_memory_ = verifier_->memory_stats();
    }
    return last_memory_;
}

std::optional<petri::PorStats> Design::por_stats() const {
    if (verifier_ && verifier_->has_por_stats()) {
        last_por_ = verifier_->por_stats();
    }
    return last_por_;
}

// -- simulation ----------------------------------------------------------

dfs::State Design::initial_state() const {
    return dfs::State::initial(graph());
}

dfs::Simulator Design::simulator(std::uint64_t seed) const {
    return dfs::Simulator(dynamics(), seed);
}

asim::TimedSimulator Design::timed_sim(tech::VoltageSchedule schedule) const {
    return asim::TimedSimulator(dynamics(), timing(),
                                tech::VoltageModel(options_.process),
                                std::move(schedule),
                                netlist().total_gates());
}

asim::TimedSimulator Design::timed_sim() const {
    return timed_sim(
        tech::VoltageSchedule::constant(options_.process.v_nominal));
}

// -- exports -------------------------------------------------------------

std::string Design::to_dot() const { return dfs::to_dot(graph()); }

std::string Design::to_astg() const {
    return petri::to_astg(translation().net);
}

std::string Design::to_verilog() const {
    return netlist::to_verilog(netlist());
}

}  // namespace rap::flow
