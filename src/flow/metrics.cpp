#include "flow/metrics.hpp"

#include <cmath>
#include <cstdio>

namespace rap::flow {

namespace {

/// Prometheus numbers: integers render without an exponent or trailing
/// zeros, everything else through %.17g (round-trippable doubles).
std::string render_value(double value) {
    if (std::isfinite(value) && value == std::floor(value) &&
        std::fabs(value) < 9.007199254740992e15) {
        char buf[32];
        std::snprintf(buf, sizeof(buf), "%.0f", value);
        return buf;
    }
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.17g", value);
    return buf;
}

std::string escape_label(const std::string& value) {
    std::string out;
    out.reserve(value.size());
    for (const char c : value) {
        switch (c) {
            case '\\': out += "\\\\"; break;
            case '"': out += "\\\""; break;
            case '\n': out += "\\n"; break;
            default: out += c;
        }
    }
    return out;
}

}  // namespace

Metrics::Sample& Metrics::sample(std::string_view name,
                                 std::string_view help, Type type,
                                 const Labels& labels) {
    for (Family& family : families_) {
        if (family.name != name) continue;
        for (Sample& s : family.samples) {
            if (s.labels == labels) return s;
        }
        family.samples.push_back(Sample{labels, 0.0});
        return family.samples.back();
    }
    families_.push_back(
        Family{std::string(name), std::string(help), type, {}});
    families_.back().samples.push_back(Sample{labels, 0.0});
    return families_.back().samples.back();
}

void Metrics::set(std::string_view name, std::string_view help, Type type,
                  double value, Labels labels) {
    sample(name, help, type, labels).value = value;
}

void Metrics::add(std::string_view name, std::string_view help, Type type,
                  double delta, Labels labels) {
    sample(name, help, type, labels).value += delta;
}

double Metrics::value(std::string_view name, const Labels& labels,
                      double fallback) const {
    for (const Family& family : families_) {
        if (family.name != name) continue;
        for (const Sample& s : family.samples) {
            if (s.labels == labels) return s.value;
        }
    }
    return fallback;
}

namespace metrics {

std::string to_prometheus(const Metrics& registry) {
    std::string out;
    for (const Metrics::Family& family : registry.families()) {
        out += "# HELP " + family.name + " " + family.help + "\n";
        out += "# TYPE " + family.name + " " +
               (family.type == Metrics::Type::kCounter ? "counter"
                                                       : "gauge") +
               "\n";
        for (const Metrics::Sample& s : family.samples) {
            out += family.name;
            if (!s.labels.empty()) {
                out += '{';
                bool first = true;
                for (const auto& [key, value] : s.labels) {
                    if (!first) out += ',';
                    first = false;
                    out += key + "=\"" + escape_label(value) + "\"";
                }
                out += '}';
            }
            out += ' ' + render_value(s.value) + '\n';
        }
    }
    return out;
}

}  // namespace metrics

}  // namespace rap::flow
