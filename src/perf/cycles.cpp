#include "perf/cycles.hpp"

#include <algorithm>
#include <unordered_set>

#include "util/strings.hpp"

namespace rap::perf {

std::string Cycle::describe(const dfs::Graph& graph) const {
    std::vector<std::string> names;
    names.reserve(nodes.size());
    for (const dfs::NodeId n : nodes) names.push_back(graph.node_name(n));
    return util::format("[%zu regs, %zu tokens, bound %.4f] ", registers,
                        tokens, throughput_bound) +
           util::join(names, " -> ");
}

std::vector<dfs::NodeId> CycleReport::bottleneck_nodes() const {
    const Cycle* slowest = bottleneck();
    return slowest ? slowest->nodes : std::vector<dfs::NodeId>{};
}

double CycleReport::throughput_bound() const {
    return cycles.empty() ? 1.0 : cycles.front().throughput_bound;
}

namespace {

/// Johnson-style simple cycle enumeration with caps. We use an iterative
/// DFS with a blocked set per root; the graphs here are small (hundreds
/// of nodes) so the simpler O(V*E*C) bound is fine.
class CycleFinder {
public:
    CycleFinder(const dfs::Graph& graph, const CycleAnalysisOptions& options)
        : graph_(graph), options_(options) {}

    CycleReport run() {
        const auto all = graph_.nodes();
        path_.reserve(options_.max_length + 1);
        on_path_.assign(graph_.node_count(), 0);
        for (const dfs::NodeId root : all) {
            if (report_.truncated) break;
            root_ = root;
            dfs(root);
        }
        std::sort(report_.cycles.begin(), report_.cycles.end(),
                  [](const Cycle& a, const Cycle& b) {
                      if (a.throughput_bound != b.throughput_bound) {
                          return a.throughput_bound < b.throughput_bound;
                      }
                      // Slower (longer) cycles first on ties.
                      return a.nodes.size() > b.nodes.size();
                  });
        return std::move(report_);
    }

private:
    void dfs(dfs::NodeId v) {
        if (report_.truncated) return;
        path_.push_back(v);
        on_path_[v.value] = 1;
        for (const dfs::NodeId next : graph_.postset(v)) {
            // Only consider cycles whose smallest node id is the root:
            // each simple cycle is then found exactly once.
            if (next < root_) continue;
            if (next == root_) {
                record_cycle();
                if (report_.truncated) break;
                continue;
            }
            if (on_path_[next.value] ||
                path_.size() >= options_.max_length) {
                continue;
            }
            dfs(next);
        }
        on_path_[v.value] = 0;
        path_.pop_back();
    }

    void record_cycle() {
        if (report_.cycles.size() >= options_.max_cycles) {
            report_.truncated = true;
            return;
        }
        Cycle cycle;
        cycle.nodes = path_;
        for (const dfs::NodeId n : path_) {
            if (graph_.is_logic(n)) {
                ++cycle.logics;
            } else {
                ++cycle.registers;
                if (graph_.initial(n).marked) ++cycle.tokens;
            }
        }
        if (cycle.registers > 0) {
            const double bubbles_pairs = static_cast<double>(
                (cycle.registers - cycle.tokens) / 2);
            cycle.throughput_bound =
                std::min(static_cast<double>(cycle.tokens), bubbles_pairs) /
                static_cast<double>(cycle.registers);
        }
        report_.cycles.push_back(std::move(cycle));
    }

    const dfs::Graph& graph_;
    CycleAnalysisOptions options_;
    CycleReport report_;
    dfs::NodeId root_;
    std::vector<dfs::NodeId> path_;
    std::vector<char> on_path_;
};

}  // namespace

CycleReport analyse_cycles(const dfs::Graph& graph,
                           CycleAnalysisOptions options) {
    return CycleFinder(graph, options).run();
}

}  // namespace rap::perf
