#include "perf/throughput.hpp"

#include "dfs/dynamics.hpp"
#include "tech/voltage.hpp"

namespace rap::perf {

ThroughputResult measure_throughput(const dfs::Graph& graph,
                                    dfs::NodeId observe,
                                    ThroughputOptions options) {
    const dfs::Dynamics dynamics(graph);
    // Unit voltage model at nominal: speed factor 1 everywhere.
    asim::TimedSimulator sim(
        dynamics, asim::uniform_timing(graph, options.node_delay_s),
        tech::VoltageModel{}, tech::VoltageSchedule::constant(1.2),
        /*leakage_gates=*/0.0);

    dfs::State state = dfs::State::initial(graph);

    // Warmup: let the pipeline fill before timing.
    asim::RunLimits warmup;
    warmup.target_marks = options.warmup_tokens;
    warmup.observe = observe;
    warmup.max_events = options.max_events;
    const auto w = sim.run(state, warmup);

    ThroughputResult result;
    if (w.deadlocked) {
        result.deadlocked = true;
        return result;
    }

    asim::RunLimits limits;
    limits.target_marks = options.tokens;
    limits.observe = observe;
    limits.max_events = options.max_events;
    const auto stats = sim.run(state, limits);

    result.deadlocked = stats.deadlocked;
    result.tokens = stats.marks_at(observe);
    result.time_s = stats.time_s;
    if (stats.time_s > 0) {
        result.tokens_per_s =
            static_cast<double>(result.tokens) / stats.time_s;
    }
    return result;
}

}  // namespace rap::perf
