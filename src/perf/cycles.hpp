#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "dfs/model.hpp"

namespace rap::perf {

/// One simple cycle of the dataflow graph with its token-game throughput
/// bound. A cycle with r registers and k tokens advances a token only
/// into two consecutive empty registers (M↑ needs the R-postset clear),
/// so the sustainable rate is limited by both tokens and bubble *pairs*:
///
///   bound = min(k, floor((r - k) / 2)) / r          (0 => the cycle is dead)
///
/// This is the DFS analogue of the classic token/bubble-limited
/// throughput of asynchronous rings; logic nodes add latency but hold no
/// tokens, which the `latency_weight` field captures for tie-breaking.
struct Cycle {
    std::vector<dfs::NodeId> nodes;  ///< in traversal order
    std::size_t registers = 0;
    std::size_t logics = 0;
    std::size_t tokens = 0;
    double throughput_bound = 0.0;

    std::string describe(const dfs::Graph& graph) const;
};

struct CycleAnalysisOptions {
    std::size_t max_cycles = 20000;
    std::size_t max_length = 64;
};

/// The Fig. 5 report: every enumerated cycle, sorted slowest-first, plus
/// the bottleneck (slowest) cycle's registers for highlighting.
struct CycleReport {
    std::vector<Cycle> cycles;  ///< sorted by ascending throughput bound
    bool truncated = false;     ///< enumeration cap hit

    const Cycle* bottleneck() const {
        return cycles.empty() ? nullptr : &cycles.front();
    }
    /// Nodes of the slowest cycle (what the Workcraft GUI highlights).
    std::vector<dfs::NodeId> bottleneck_nodes() const;
    /// The model-wide throughput bound (the slowest cycle's bound;
    /// +inf-free: returns 0 when a dead cycle exists, 1 when acyclic).
    double throughput_bound() const;
};

/// Enumerates simple cycles (Johnson's algorithm, capped) and computes
/// their throughput bounds from the initial marking.
CycleReport analyse_cycles(const dfs::Graph& graph,
                           CycleAnalysisOptions options = {});

}  // namespace rap::perf
