#pragma once

#include <cstdint>

#include "asim/timed_sim.hpp"
#include "dfs/model.hpp"

namespace rap::perf {

/// Measured steady-state throughput of a DFS model: tokens per second at
/// an observation register under uniform unit node delays (the dynamic
/// counterpart of the static cycle bound — the Workcraft performance
/// analyser reports both).
struct ThroughputResult {
    double tokens_per_s = 0;
    double time_s = 0;
    std::uint64_t tokens = 0;
    bool deadlocked = false;
};

struct ThroughputOptions {
    std::uint64_t tokens = 200;       ///< tokens to observe
    std::uint64_t warmup_tokens = 20; ///< excluded from the rate
    double node_delay_s = 1.0;        ///< uniform per-event work
    std::uint64_t max_events = 10'000'000;
};

ThroughputResult measure_throughput(const dfs::Graph& graph,
                                    dfs::NodeId observe,
                                    ThroughputOptions options = {});

}  // namespace rap::perf
