#pragma once

#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "dfs/dynamics.hpp"
#include "dfs/model.hpp"
#include "dfs/translate.hpp"
#include "petri/checkpoint.hpp"
#include "petri/parallel.hpp"
#include "petri/persistence.hpp"
#include "petri/predicate.hpp"
#include "petri/reachability.hpp"
#include "verify/artifacts.hpp"
#include "verify/spec.hpp"

namespace rap::verify {

/// The properties the Workcraft/MPSAT flow checks on DFS models
/// (Section II-D): the standard ones (deadlock) plus the custom functional
/// hazards of the dynamic extension (control-token conflicts,
/// non-persistence) expressed in Reach on the translated Petri net.
enum class Property {
    Deadlock,
    ControlConflict,
    Persistence,
    Custom,
};

std::string_view to_string(Property property);

/// Outcome of one property check.
struct Finding {
    Property property = Property::Custom;
    bool violated = false;
    bool truncated = false;          ///< state space cap hit — inconclusive
    std::size_t states_explored = 0;
    std::string detail;              ///< human-readable violation summary
    std::vector<std::string> trace;  ///< PN firing trace witness
    /// The same witness translated back to DFS-level events through the
    /// translation's name map ("push filt destroys a bypassed token"
    /// instead of "Mf_filt+") — the debugging aid of Section III-A,
    /// aligned entry-for-entry with `trace`.
    std::vector<std::string> dfs_trace;
    /// The witness as typed DFS events, aligned entry-for-entry with
    /// `trace` — machine-readable (unlike dfs_trace) so it can feed
    /// TimedSimulator::set_stimulus directly for witness replay on the
    /// timed simulator.
    std::vector<dfs::Event> event_trace;

    std::string to_string() const;
};

struct VerifyOptions {
    std::size_t max_states = 2'000'000;
    /// Worker threads for the state-space exploration: 0 = one per
    /// hardware thread (petri::ParallelReachabilityExplorer), 1 = the
    /// sequential engine's exact code path. Whatever the setting, one
    /// verification pass still answers every property in one exploration
    /// and reports the same verdicts. Parallel passes pick canonical
    /// (smallest) witnesses, so their reports are deterministic across
    /// runs and across thread counts >= 2; the sequential path instead
    /// keeps its discovery-order witness, and a single-question verify
    /// may stop mid-layer there, so states_explored and witness details
    /// can differ between threads == 1 and parallel configurations.
    std::size_t threads = 0;
    /// Frontier-only enabled-set cache (petri::ReachabilityOptions::
    /// frontier_enabled_cache): drops the enabled bitsets of fully
    /// expanded BFS layers, shrinking resident bytes per state by
    /// roughly the enabled-word share of the record — the knob that lets
    /// one pass hold the ~19M-state 4-stage OPE models. Verdicts and
    /// witnesses are bit-identical either way.
    bool frontier_enabled_cache = true;
    /// Partial-order (stubborn-set) reduction forwarded to the
    /// exploration engines (petri::ReachabilityOptions::por). Verdicts
    /// are preserved for every property the verifier checks — the
    /// standard goals carry support places, so the unknown-support
    /// fallback never triggers for Spec::standard() — but
    /// states_explored counts the reduced graph and violation witnesses
    /// need not be globally shortest. por_stats() reports the measured
    /// reduction after a pass.
    bool por = false;
    /// Cooperative stop hook forwarded to the exploration engines
    /// (petri::ReachabilityOptions::stop): polled cheaply mid-pass; when
    /// it returns true the exploration ends early and every finding of
    /// the pass reports `truncated = true` (inconclusive). flow::Sweep
    /// drives cancellation and per-configuration timeouts through this.
    /// Must not throw. Null (the default) never stops.
    std::function<bool()> stop;
    /// Cross-pass marking-store retention forwarded to the exploration
    /// engines (petri::ReachabilityOptions::reuse) — the incremental
    /// re-verification hook. Passes sharing one store re-claim resident
    /// markings (and their cached enabled rows) instead of re-interning
    /// them, which pays off when consecutive verifications differ only
    /// in the net's initial marking (flow::Design reconfigurations).
    /// Verdicts, witnesses and counters are bit-identical to scratch at
    /// the same thread count; dimension or witness-mode mismatches fall
    /// back to scratch silently. The same store must not be used by two
    /// explorations concurrently.
    std::shared_ptr<petri::ReuseStore> reuse;
    /// Compact interning layout (petri::ReachabilityOptions::
    /// compact_store): drops the id->record index and a quarter of the
    /// table head-room for ~30% less non-record overhead per state.
    /// Verdicts, witnesses and counters are bit-identical either way.
    bool compact_store = false;
    /// Periodic checkpointing (petri::ReachabilityOptions::
    /// checkpoint_path): when non-empty, every exploration this verifier
    /// runs serializes resume points there. See the engine option for
    /// cadence and the kCanonicalCas / no-reuse restrictions.
    std::string checkpoint_path;
    /// Cadence forwarded to petri::ReachabilityOptions::checkpoint_every
    /// (0 = engine default).
    std::size_t checkpoint_every = 0;
    /// Resume point forwarded to petri::ReachabilityOptions::resume: the
    /// next exploration continues the checkpointed pass instead of
    /// starting at the initial marking.
    std::shared_ptr<const petri::StoreCheckpoint> resume;
};

/// A user-supplied Reach-style predicate for the standard checks'
/// exploration.
///
/// Retired surface: verify::Spec is the only documented way to attach
/// custom properties — it *owns* its predicates (no raw-pointer
/// lifetime contract) and composes fluently. The struct remains only so
/// stale call sites fail loudly with a deprecation warning instead of
/// silently: no Verifier entry point accepts it anymore.
struct [[deprecated(
    "use verify::Spec::custom(description, predicate) — Spec owns its "
    "predicates and runs in the same single exploration")]] CustomCheck {
    const petri::Predicate* predicate = nullptr;
    std::string description;
};

/// Aggregate report of a full verification pass. Findings are always in
/// the canonical deterministic order — Deadlock, ControlConflict,
/// Persistence, then custom properties in their registration order —
/// regardless of how the Spec was assembled.
struct Report {
    std::vector<Finding> findings;

    bool clean() const {
        for (const auto& f : findings) {
            if (f.violated) return false;
        }
        return true;
    }

    /// First finding of the given property; nullptr when the pass did not
    /// check it.
    const Finding* find(Property property) const {
        for (const auto& f : findings) {
            if (f.property == property) return &f;
        }
        return nullptr;
    }

    /// One line per finding, in the canonical order documented above.
    std::string to_string() const;
};

/// Verifies DFS models by translating them to their Petri-net semantics
/// and model-checking the result — the same pipeline the paper automates
/// in Workcraft with the MPSAT backend.
///
/// Construction is cheap when the model was compiled before: the
/// translation + CompiledNet artifact comes from the shared
/// verify::compile_model cache, so sequential constructions (and copies)
/// over the same model content share ONE compile.
class Verifier {
public:
    explicit Verifier(const dfs::Graph& graph, VerifyOptions options = {});

    /// Shares an externally cached artifact (flow::Design's constructor
    /// path). `model` must have been compiled from `graph`'s current
    /// content.
    Verifier(const dfs::Graph& graph,
             std::shared_ptr<const CompiledModel> model,
             VerifyOptions options = {});

    /// Runs exactly the properties `spec` asks for, sharing ONE
    /// state-space exploration across all of them, and reports findings
    /// in the canonical order.
    Report verify(const Spec& spec) const;

    /// Reachability of a marking with no enabled transitions.
    Finding check_deadlock() const;

    /// Reachability of a marking where some node's control preset is
    /// fully marked with mixed True/False tokens — the "disabled node"
    /// hazard of Section II-B.
    Finding check_control_conflict() const;

    /// Output persistence of the PN, exempting the intended Mt+/Mf+
    /// free choices of control registers (Fig. 4's non-deterministic
    /// evaluation outcome is a choice, not a hazard).
    Finding check_persistence() const;

    /// Reachability of a custom Reach-style predicate.
    Finding check_custom(const petri::Predicate& predicate,
                         std::string description) const;

    /// Runs all standard checks — deadlock, control conflict, persistence
    /// — in ONE state-space exploration; shorthand for
    /// verify(Spec::standard()). Custom properties go through
    /// verify(Spec) (the Spec owns its predicates).
    Report verify_all() const;

    /// Number of state-space explorations this verifier has run so far.
    /// Lets callers (and tests) confirm verify_all's single-pass claim.
    std::size_t explorations_run() const noexcept { return explorations_; }

    /// True once at least one exploration has run, i.e. memory_stats()
    /// reports a real footprint rather than its all-zero initial state.
    bool has_memory_stats() const noexcept { return explorations_ > 0; }

    /// Memory footprint of the most recent exploration (records, resident
    /// and peak bytes) — all zeros until one has run; check
    /// has_memory_stats() (flow::Design::memory_stats() wraps this in a
    /// std::optional instead).
    const petri::MemoryStats& memory_stats() const noexcept {
        return last_memory_;
    }

    /// True once at least one exploration has run, i.e. por_stats()
    /// reports the last pass rather than its all-zero initial state.
    bool has_por_stats() const noexcept { return explorations_ > 0; }

    /// Reduction statistics of the most recent exploration (inactive
    /// unless VerifyOptions::por was on and the pass could reduce);
    /// all-zero until one has run — check has_por_stats()
    /// (flow::Design::por_stats() wraps this in a std::optional instead).
    const petri::PorStats& por_stats() const noexcept { return last_por_; }

    /// Explorations that requested cross-pass reuse but ran scratch (a
    /// record-dimension or witness-mode mismatch). A nonzero count means
    /// the "incremental" speed-up silently stopped being incremental —
    /// flow::Design aggregates this into rap_reuse_fallbacks_total.
    std::size_t reuse_fallbacks() const noexcept {
        return reuse_fallbacks_;
    }

    const dfs::Translation& translation() const noexcept {
        return model_->translation();
    }

    /// The shared compiled artifact backing this verifier.
    const std::shared_ptr<const CompiledModel>& model() const noexcept {
        return model_;
    }

private:
    Finding from_reachability(Property property,
                              const petri::ReachabilityResult& result,
                              std::string detail_on_violation) const;
    Finding persistence_finding(const petri::MultiResult& multi) const;
    void fill_traces(Finding& finding, const petri::Trace& trace) const;

    /// The control-conflict Reach predicate; nullopt when no node has
    /// multiple controls (trivially safe, nothing to explore).
    std::optional<petri::Predicate> control_conflict_predicate() const;
    static bool persistence_exempt(const petri::Net& net,
                                   petri::TransitionId a,
                                   petri::TransitionId b);

    Report run_spec(const Spec& spec, bool stop_at_first) const;
    petri::MultiResult run_exploration(const petri::MultiQuery& query,
                                       bool stop_at_first_match) const;

    const dfs::Graph* graph_;
    VerifyOptions options_;
    std::shared_ptr<const CompiledModel> model_;
    mutable std::size_t explorations_ = 0;
    mutable std::size_t reuse_fallbacks_ = 0;
    mutable petri::MemoryStats last_memory_;
    mutable petri::PorStats last_por_;
};

}  // namespace rap::verify
