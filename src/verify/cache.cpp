#include "verify/cache.hpp"

#include <functional>
#include <utility>

namespace rap::verify {

ArtifactCache::ArtifactCache(Options options) : options_(options) {
    if (options_.shard_count == 0) options_.shard_count = 1;
    per_shard_capacity_ =
        std::max<std::size_t>(options_.capacity_bytes / options_.shard_count,
                              1);
    shards_.reserve(options_.shard_count);
    for (std::size_t i = 0; i < options_.shard_count; ++i) {
        shards_.push_back(std::make_unique<Shard>());
    }
}

ArtifactCache::~ArtifactCache() = default;

ArtifactCache::Pin::Pin(Pin&& other) noexcept
    : cache_(std::exchange(other.cache_, nullptr)),
      shard_(other.shard_),
      key_(std::move(other.key_)),
      model_(std::move(other.model_)) {}

ArtifactCache::Pin& ArtifactCache::Pin::operator=(Pin&& other) noexcept {
    if (this != &other) {
        release();
        cache_ = std::exchange(other.cache_, nullptr);
        shard_ = other.shard_;
        key_ = std::move(other.key_);
        model_ = std::move(other.model_);
    }
    return *this;
}

void ArtifactCache::Pin::release() {
    if (cache_ != nullptr) {
        cache_->unpin(shard_, key_);
        cache_ = nullptr;
    }
    model_.reset();
}

std::shared_ptr<const CompiledModel> ArtifactCache::lookup(
    const dfs::Graph& graph, bool pin, std::string* key_out,
    std::size_t* shard_out) {
    std::string key = model_fingerprint(graph);
    const std::size_t shard_index =
        std::hash<std::string>{}(key) % shards_.size();
    if (key_out != nullptr) *key_out = key;
    if (shard_out != nullptr) *shard_out = shard_index;
    Shard& shard = *shards_[shard_index];

    std::unique_lock<std::mutex> lock(shard.mutex);
    for (;;) {
        auto it = shard.index.find(key);
        if (it != shard.index.end()) {
            Entry& entry = *it->second;
            if (entry.building) {
                // Another caller is compiling this exact model; wait for
                // its build instead of compiling again, then re-check
                // from scratch (the build may have failed and vanished).
                shard.ready.wait(lock);
                continue;
            }
            ++shard.hits;
            shard.lru.splice(shard.lru.begin(), shard.lru, it->second);
            if (pin) ++entry.pin_count;
            return entry.model;
        }

        // Miss: insert a building placeholder (pinned so concurrent
        // eviction cannot drop it) and compile outside the lock.
        ++shard.misses;
        shard.lru.push_front(Entry{key, nullptr, 0, 1, true});
        shard.index[key] = shard.lru.begin();
        lock.unlock();

        std::shared_ptr<const CompiledModel> model;
        try {
            model = build_model(graph);
        } catch (...) {
            lock.lock();
            auto placed = shard.index.find(key);
            shard.lru.erase(placed->second);
            shard.index.erase(placed);
            shard.ready.notify_all();  // waiters retry as builders
            throw;
        }

        lock.lock();
        auto placed = shard.index.find(key);
        Entry& entry = *placed->second;
        entry.model = model;
        entry.bytes = model->approx_bytes();
        entry.building = false;
        entry.pin_count = pin ? 1 : 0;  // the build pin becomes the caller's
        shard.bytes += entry.bytes;
        shard.ready.notify_all();
        evict_overflow(shard);
        return model;
    }
}

std::shared_ptr<const CompiledModel> ArtifactCache::build_model(
    const dfs::Graph& graph) {
    const std::string sfp = model_structure_fingerprint(graph);
    std::shared_ptr<const CompiledModel> parent;
    {
        const std::lock_guard<std::mutex> lock(structural_mu_);
        auto it = structural_.find(sfp);
        if (it != structural_.end()) parent = it->second.lock();
    }
    auto model = parent != nullptr
                     ? std::make_shared<const CompiledModel>(graph, *parent)
                     : std::make_shared<const CompiledModel>(graph);
    {
        const std::lock_guard<std::mutex> lock(structural_mu_);
        structural_[sfp] = model;
        // The index only ever grows by distinct structures; sweep out
        // entries whose artifacts all died so it cannot accumulate
        // unboundedly across long multi-model runs.
        if (structural_.size() > 64) {
            for (auto it = structural_.begin(); it != structural_.end();) {
                if (it->second.expired()) {
                    it = structural_.erase(it);
                } else {
                    ++it;
                }
            }
        }
    }
    return model;
}

std::shared_ptr<const CompiledModel> ArtifactCache::get(
    const dfs::Graph& graph) {
    return lookup(graph, /*pin=*/false, nullptr, nullptr);
}

ArtifactCache::Pin ArtifactCache::get_pinned(const dfs::Graph& graph) {
    std::string key;
    std::size_t shard_index = 0;
    auto model = lookup(graph, /*pin=*/true, &key, &shard_index);
    return Pin(this, shard_index, std::move(key), std::move(model));
}

void ArtifactCache::unpin(std::size_t shard_index, const std::string& key) {
    Shard& shard = *shards_[shard_index];
    const std::lock_guard<std::mutex> lock(shard.mutex);
    auto it = shard.index.find(key);
    if (it != shard.index.end() && it->second->pin_count > 0) {
        --it->second->pin_count;
        // Pinned entries may have pushed the shard past capacity;
        // reclaim the overshoot as soon as the pin drops.
        evict_overflow(shard);
    }
}

void ArtifactCache::evict_overflow(Shard& shard) {
    auto it = shard.lru.end();
    while (shard.bytes > per_shard_capacity_ && it != shard.lru.begin()) {
        --it;
        if (it->pin_count > 0 || it->building) continue;
        shard.bytes -= it->bytes;
        ++shard.evictions;
        shard.index.erase(it->key);
        it = shard.lru.erase(it);
    }
}

CacheStats ArtifactCache::stats() const {
    CacheStats stats;
    stats.capacity_bytes = options_.capacity_bytes;
    stats.shards.reserve(shards_.size());
    for (const auto& shard_ptr : shards_) {
        const Shard& shard = *shard_ptr;
        const std::lock_guard<std::mutex> lock(shard.mutex);
        CacheShardStats s;
        s.hits = shard.hits;
        s.misses = shard.misses;
        s.evictions = shard.evictions;
        s.entries = shard.index.size();
        s.bytes = shard.bytes;
        for (const Entry& entry : shard.lru) {
            if (entry.pin_count > 0) ++s.pinned;
        }
        stats.hits += s.hits;
        stats.misses += s.misses;
        stats.evictions += s.evictions;
        stats.entries += s.entries;
        stats.bytes += s.bytes;
        stats.pinned += s.pinned;
        stats.shards.push_back(s);
    }
    return stats;
}

void ArtifactCache::clear() {
    for (const auto& shard_ptr : shards_) {
        Shard& shard = *shard_ptr;
        const std::lock_guard<std::mutex> lock(shard.mutex);
        for (auto it = shard.lru.begin(); it != shard.lru.end();) {
            if (it->pin_count > 0 || it->building) {
                ++it;
                continue;
            }
            shard.bytes -= it->bytes;
            shard.index.erase(it->key);
            it = shard.lru.erase(it);
        }
    }
}

ArtifactCache& ArtifactCache::process_cache() {
    static ArtifactCache cache;
    return cache;
}

CacheStats cache_stats() { return ArtifactCache::process_cache().stats(); }

}  // namespace rap::verify
