#pragma once

#include <cstddef>
#include <memory>
#include <string>

#include "dfs/model.hpp"
#include "dfs/translate.hpp"
#include "petri/compiled.hpp"

namespace rap::verify {

/// The immutable compiled verification artifact of one DFS model
/// snapshot: the Fig. 3 PN translation plus its CompiledNet. Built once
/// and shared (by shared_ptr) between every Verifier and flow::Design
/// session that asks for the same model — the expensive part of
/// constructing a verifier is paid once per model *content*, not once
/// per construction.
///
/// Never copied or moved: the CompiledNet holds a pointer into the
/// translation's net, so instances live on the heap behind shared_ptr.
class CompiledModel {
public:
    explicit CompiledModel(const dfs::Graph& graph);

    /// Delta compilation: builds the artifact for `graph` by splicing the
    /// unchanged CSR rows and index entries out of `parent`'s CompiledNet
    /// instead of repacking the whole net — the run-time reconfiguration
    /// fast path, where the structure is identical and only initial
    /// markings moved (set_depth) so *every* row is shared wholesale.
    /// `parent` must have the same structural fingerprint
    /// (model_structure_fingerprint); the result is field-for-field
    /// identical to a full build. The parent is only read during
    /// construction and need not outlive the new model.
    CompiledModel(const dfs::Graph& graph, const CompiledModel& parent);

    CompiledModel(const CompiledModel&) = delete;
    CompiledModel& operator=(const CompiledModel&) = delete;

    const dfs::Translation& translation() const noexcept {
        return translation_;
    }
    const petri::CompiledNet& compiled() const noexcept { return compiled_; }
    const petri::Net& net() const noexcept { return translation_.net; }

    /// Deterministic size estimate (from the net's place/transition
    /// counts) used by the ArtifactCache's byte-capacity LRU accounting.
    std::size_t approx_bytes() const noexcept { return approx_bytes_; }

private:
    dfs::Translation translation_;
    petri::CompiledNet compiled_;
    std::size_t approx_bytes_ = 0;
};

/// Exact content fingerprint of a DFS model: every field the Fig. 3
/// translation reads, so two graphs with equal fingerprints translate to
/// identical nets. The ArtifactCache key, and the dedup-before-compile
/// content key flow::Sweep groups grid configurations by (full content,
/// not a hash — no collision risk; names are length-prefixed so
/// separator characters cannot forge another model's key).
std::string model_fingerprint(const dfs::Graph& graph);

/// Structural fingerprint of a DFS model: model_fingerprint minus the
/// per-node initial-marking fields. Two graphs with equal structural
/// fingerprints translate to nets that differ at most in their initial
/// markings — exactly the condition under which CompiledModel's delta
/// constructor (and petri::ReuseStore row retention) apply. The
/// ArtifactCache keys its parent index by this.
std::string model_structure_fingerprint(const dfs::Graph& graph);

/// Returns the compiled artifact for `graph`, reusing a cached one when
/// an identical model (same nodes, edges, inversions and initial
/// markings) was compiled before. Thread-safe: rides the process-wide
/// verify::ArtifactCache (sharded LRU with build coalescing — concurrent
/// callers racing on the same content share ONE build). See
/// verify/cache.hpp for pinning and introspection.
std::shared_ptr<const CompiledModel> compile_model(const dfs::Graph& graph);

/// Total CompiledModel constructions in this process — the artifact
/// build counter tests use to assert that repeated Verifier
/// constructions (and flow::Design re-verifications, and whole
/// flow::Sweep grids) share one compile per distinct model content.
std::size_t artifact_builds() noexcept;

/// The subset of artifact_builds() that went through the delta
/// constructor (a structurally identical parent was resident) — lets
/// tests and benches assert that reconfiguration sweeps splice compiled
/// rows instead of repacking them.
std::size_t artifact_delta_builds() noexcept;

}  // namespace rap::verify
