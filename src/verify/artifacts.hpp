#pragma once

#include <cstddef>
#include <memory>

#include "dfs/model.hpp"
#include "dfs/translate.hpp"
#include "petri/compiled.hpp"

namespace rap::verify {

/// The immutable compiled verification artifact of one DFS model
/// snapshot: the Fig. 3 PN translation plus its CompiledNet. Built once
/// and shared (by shared_ptr) between every Verifier and flow::Design
/// session that asks for the same model — the expensive part of
/// constructing a verifier is paid once per model *content*, not once
/// per construction.
///
/// Never copied or moved: the CompiledNet holds a pointer into the
/// translation's net, so instances live on the heap behind shared_ptr.
class CompiledModel {
public:
    explicit CompiledModel(const dfs::Graph& graph);
    CompiledModel(const CompiledModel&) = delete;
    CompiledModel& operator=(const CompiledModel&) = delete;

    const dfs::Translation& translation() const noexcept {
        return translation_;
    }
    const petri::CompiledNet& compiled() const noexcept { return compiled_; }
    const petri::Net& net() const noexcept { return translation_.net; }

private:
    dfs::Translation translation_;
    petri::CompiledNet compiled_;
};

/// Returns the compiled artifact for `graph`, reusing a cached one when
/// an identical model (same nodes, edges, inversions and initial
/// markings) was compiled before. Thread-safe; the cache keeps a small
/// LRU window of recent models.
std::shared_ptr<const CompiledModel> compile_model(const dfs::Graph& graph);

/// Total CompiledModel constructions in this process — the artifact
/// build counter tests use to assert that repeated Verifier
/// constructions (and flow::Design re-verifications) share one compile.
std::size_t artifact_builds() noexcept;

}  // namespace rap::verify
