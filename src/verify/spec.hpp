#pragma once

#include <string>
#include <vector>

#include "petri/predicate.hpp"

namespace rap::verify {

/// Fluent property specification: which properties one verification pass
/// must answer. Replaces the raw-pointer CustomCheck span — the Spec
/// *owns* its predicates, so callers can build them inline:
///
///     auto report = design.verify(verify::Spec{}
///                                     .deadlock()
///                                     .persistence()
///                                     .custom("no gap", std::move(pred)));
///
/// However the spec is assembled, the compiled pass is always a single
/// state-space exploration, and the report lists findings in the
/// canonical order: Deadlock, ControlConflict, Persistence, then custom
/// properties in registration order.
class Spec {
public:
    struct CustomProperty {
        std::string description;
        petri::Predicate predicate;
    };

    /// All three standard checks (what Verifier::verify_all runs).
    static Spec standard() {
        return Spec{}.deadlock().control_conflict().persistence();
    }

    Spec& deadlock() {
        deadlock_ = true;
        return *this;
    }
    Spec& control_conflict() {
        control_conflict_ = true;
        return *this;
    }
    Spec& persistence() {
        persistence_ = true;
        return *this;
    }
    Spec& custom(std::string description, petri::Predicate predicate) {
        customs_.push_back({std::move(description), std::move(predicate)});
        return *this;
    }

    bool wants_deadlock() const noexcept { return deadlock_; }
    bool wants_control_conflict() const noexcept { return control_conflict_; }
    bool wants_persistence() const noexcept { return persistence_; }
    const std::vector<CustomProperty>& customs() const noexcept {
        return customs_;
    }
    bool empty() const noexcept {
        return !deadlock_ && !control_conflict_ && !persistence_ &&
               customs_.empty();
    }

private:
    bool deadlock_ = false;
    bool control_conflict_ = false;
    bool persistence_ = false;
    std::vector<CustomProperty> customs_;
};

}  // namespace rap::verify
