#pragma once

#include <cstddef>
#include <span>
#include <string>

#include "dfs/dynamics.hpp"
#include "dfs/state.hpp"
#include "dfs/translate.hpp"

namespace rap::verify {

/// Result of replaying a DFS event sequence on the translated Petri net
/// — the bridge between the timed simulator's event log and the
/// verifier's reachability semantics. A full replay is a constructive
/// proof that the sequence (and hence its final state) is PN-reachable.
struct WitnessReplay {
    bool ok = false;           ///< every event fired on both semantics
    std::size_t fired = 0;     ///< events fired before success/divergence
    std::string detail;        ///< failure description (empty when ok)
    dfs::State final_state;    ///< DFS state after the fired prefix
    petri::Marking final_marking;  ///< PN marking after the fired prefix

    /// The final marking agrees with the encoding of the final state —
    /// the bisimulation invariant, checked on every successful replay.
    bool marking_agrees = false;
};

/// Replays `events` from the graph's initial state, firing each event on
/// the DFS dynamics AND its translated transition on the Petri net in
/// lockstep. Diverges (ok = false) when an event is not enabled on
/// either side or has no PN transition. Unmark of a dynamic register
/// resolves to Mt-/Mf- by the token polarity the DFS state carries at
/// that moment, so callers need no polarity bookkeeping of their own.
///
/// Use with verify::Finding::event_trace to turn a model-checker
/// counterexample into a timed-sim stimulus (TimedSimulator::
/// set_stimulus), or with a timed-sim event log (TimedEvent::event) to
/// confirm a hazardous simulation trace reaches a PN-reachable marking.
WitnessReplay replay_events_on_net(const dfs::Dynamics& dynamics,
                                   const dfs::Translation& translation,
                                   std::span<const dfs::Event> events);

}  // namespace rap::verify
