#include "verify/witness.hpp"

#include <stdexcept>

namespace rap::verify {

WitnessReplay replay_events_on_net(const dfs::Dynamics& dynamics,
                                   const dfs::Translation& translation,
                                   std::span<const dfs::Event> events) {
    const dfs::Graph& graph = dynamics.graph();
    WitnessReplay out;
    out.final_state = dfs::State::initial(graph);
    out.final_marking = translation.net.initial_marking();

    for (const dfs::Event& e : events) {
        const std::string label =
            graph.node_name(e.node) + "/" + std::string(to_string(e.kind));
        if (!dynamics.is_enabled(out.final_state, e)) {
            out.detail = "event " + label +
                         " not enabled on the DFS dynamics after " +
                         std::to_string(out.fired) + " events";
            return out;
        }
        // Unmark of a dynamic register splits into Mt-/Mf- on the net;
        // the polarity is whatever token the register carries right now.
        const bool token_true = out.final_state.token_true(e.node);
        petri::TransitionId t;
        try {
            t = translation.transition_for(graph, e, token_true);
        } catch (const std::invalid_argument& ex) {
            out.detail = ex.what();
            return out;
        }
        if (!translation.net.is_enabled(out.final_marking, t)) {
            out.detail = "transition " +
                         translation.net.transition_name(t) +
                         " not enabled on the Petri net after " +
                         std::to_string(out.fired) +
                         " events — the semantics diverged";
            return out;
        }
        dynamics.apply(out.final_state, e);
        translation.net.fire(out.final_marking, t);
        ++out.fired;
    }

    out.ok = true;
    out.marking_agrees =
        translation.encode(graph, out.final_state) == out.final_marking;
    if (!out.marking_agrees) {
        out.detail = "replay succeeded but the final marking disagrees "
                     "with the encoded final state";
    }
    return out;
}

}  // namespace rap::verify
