#pragma once

#include <condition_variable>
#include <cstddef>
#include <list>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "verify/artifacts.hpp"

namespace rap::verify {

/// Counters of one cache shard, snapshotted by ArtifactCache::stats().
struct CacheShardStats {
    std::size_t hits = 0;       ///< lookups served from the shard
    std::size_t misses = 0;     ///< lookups that triggered a build
    std::size_t evictions = 0;  ///< entries dropped by the LRU policy
    std::size_t entries = 0;    ///< cached models right now
    std::size_t bytes = 0;      ///< estimated resident bytes right now
    std::size_t pinned = 0;     ///< entries currently pinned
};

/// Aggregate cache snapshot: the per-shard counters plus their sums.
/// Every lookup is exactly one hit or one miss (waiting on another
/// caller's in-flight build counts as a hit — the waiter does not
/// build), so `hits + misses` reconciles with the total lookup count
/// and `misses` with the number of artifact builds the cache ran.
struct CacheStats {
    std::size_t hits = 0;
    std::size_t misses = 0;
    std::size_t evictions = 0;
    std::size_t entries = 0;
    std::size_t bytes = 0;
    std::size_t pinned = 0;
    std::size_t capacity_bytes = 0;
    std::vector<CacheShardStats> shards;

    double hit_rate() const noexcept {
        const std::size_t lookups = hits + misses;
        return lookups == 0 ? 0.0
                            : static_cast<double>(hits) /
                                  static_cast<double>(lookups);
    }
};

/// Concurrent sharded LRU cache of CompiledModel artifacts, keyed by
/// exact model content (verify::model_fingerprint). The multi-tenant
/// replacement for the PR-3 process-wide-mutex map:
///
/// - **Mutex-striped shards.** The fingerprint hash picks one of N
///   shards; each shard has its own mutex, LRU list and counters, so
///   concurrent sweeps over different models do not serialise.
/// - **Byte-capacity LRU.** Capacity is bytes (CompiledModel::
///   approx_bytes), split evenly across shards; least-recently-used
///   unpinned entries are evicted when a shard overflows.
/// - **Build coalescing.** The first caller to miss a key builds the
///   model *outside* the shard lock; concurrent callers for the same
///   key block until that build lands instead of compiling again —
///   dedup-before-compile for free, even when a batch driver's workers
///   race on identical configurations.
/// - **Pinned entries.** An in-flight build is pinned automatically,
///   and get_pinned() returns a RAII Pin that keeps the entry resident
///   until released — a sweep cannot evict what a worker is about to
///   use. Pinned entries may push a shard past capacity; the overshoot
///   is reclaimed on the next unpinned insertion.
class ArtifactCache {
public:
    struct Options {
        std::size_t shard_count = 8;
        std::size_t capacity_bytes = 64 * 1024 * 1024;
    };

    ArtifactCache() : ArtifactCache(Options{}) {}
    explicit ArtifactCache(Options options);
    ArtifactCache(const ArtifactCache&) = delete;
    ArtifactCache& operator=(const ArtifactCache&) = delete;
    ~ArtifactCache();

    /// RAII eviction pin. While alive, the entry stays cached (the
    /// model itself is additionally kept alive by the shared_ptr, pin
    /// or no pin). Must not outlive the cache.
    class Pin {
    public:
        Pin() = default;
        Pin(Pin&& other) noexcept;
        Pin& operator=(Pin&& other) noexcept;
        Pin(const Pin&) = delete;
        Pin& operator=(const Pin&) = delete;
        ~Pin() { release(); }

        const std::shared_ptr<const CompiledModel>& model() const noexcept {
            return model_;
        }
        explicit operator bool() const noexcept { return model_ != nullptr; }
        void release();

    private:
        friend class ArtifactCache;
        Pin(ArtifactCache* cache, std::size_t shard, std::string key,
            std::shared_ptr<const CompiledModel> model)
            : cache_(cache),
              shard_(shard),
              key_(std::move(key)),
              model_(std::move(model)) {}

        ArtifactCache* cache_ = nullptr;
        std::size_t shard_ = 0;
        std::string key_;
        std::shared_ptr<const CompiledModel> model_;
    };

    /// The artifact for `graph`: a cache hit, or exactly one build per
    /// key no matter how many callers miss it concurrently.
    std::shared_ptr<const CompiledModel> get(const dfs::Graph& graph);

    /// get(), plus an eviction pin held until the returned Pin drops.
    Pin get_pinned(const dfs::Graph& graph);

    CacheStats stats() const;

    /// Drops every unpinned entry (hit/miss/eviction counters are kept;
    /// the dropped entries do not count as evictions).
    void clear();

    std::size_t shard_count() const noexcept { return shards_.size(); }
    std::size_t capacity_bytes() const noexcept {
        return options_.capacity_bytes;
    }

    /// The process-wide instance behind verify::compile_model and every
    /// flow::Design session.
    static ArtifactCache& process_cache();

private:
    struct Entry {
        std::string key;
        std::shared_ptr<const CompiledModel> model;  ///< null while building
        std::size_t bytes = 0;
        std::size_t pin_count = 0;
        bool building = false;
    };

    struct Shard {
        mutable std::mutex mutex;
        std::condition_variable ready;
        /// Most-recently-used first; Entry addresses are stable.
        std::list<Entry> lru;
        std::unordered_map<std::string, std::list<Entry>::iterator> index;
        std::size_t bytes = 0;
        std::size_t hits = 0;
        std::size_t misses = 0;
        std::size_t evictions = 0;
    };

    std::shared_ptr<const CompiledModel> lookup(const dfs::Graph& graph,
                                                bool pin, std::string* key_out,
                                                std::size_t* shard_out);
    /// Compiles `graph` — as a delta off a live structurally identical
    /// parent when the structural index has one, from scratch otherwise —
    /// and registers the result as the structure's latest parent. Called
    /// outside any shard lock (builds are the slow path).
    std::shared_ptr<const CompiledModel> build_model(const dfs::Graph& graph);
    void unpin(std::size_t shard_index, const std::string& key);
    void evict_overflow(Shard& shard);  ///< caller holds shard.mutex

    Options options_;
    std::size_t per_shard_capacity_;
    std::vector<std::unique_ptr<Shard>> shards_;
    /// Structural-fingerprint -> most recent artifact of that structure,
    /// held weakly: delta compilation wants *a* live parent but must not
    /// keep evicted models alive. Global (not sharded) — only touched on
    /// the build slow path.
    std::mutex structural_mu_;
    std::unordered_map<std::string, std::weak_ptr<const CompiledModel>>
        structural_;
};

/// Snapshot of the process-wide artifact cache (the instance behind
/// verify::compile_model and flow::Design) — per-shard hit/miss/eviction
/// counters, resident bytes and pin counts.
CacheStats cache_stats();

}  // namespace rap::verify
