#include "verify/artifacts.hpp"

#include <atomic>

#include "util/strings.hpp"
#include "verify/cache.hpp"

namespace rap::verify {

namespace {

std::atomic<std::size_t> g_builds{0};
std::atomic<std::size_t> g_delta_builds{0};

}  // namespace

std::string model_structure_fingerprint(const dfs::Graph& graph) {
    // model_fingerprint minus the initial-marking fields: what remains is
    // exactly what the Fig. 3 translation turns into places, transitions
    // and arcs, so equal keys mean identical net *structure*.
    std::string key =
        util::format("%zu:", graph.name().size()) + graph.name();
    key += '\x1f';
    for (const dfs::NodeId n : graph.nodes()) {
        const std::string& name = graph.node_name(n);
        key += util::format("%zu:", name.size()) + name;
        key += util::format(":%d;", static_cast<int>(graph.kind(n)));
    }
    key += '\x1f';
    for (const dfs::NodeId n : graph.nodes()) {
        for (const dfs::NodeId m : graph.postset(n)) {
            key += util::format("%u>%u:%d;", n.value, m.value,
                                graph.is_inverted(n, m) ? 1 : 0);
        }
    }
    return key;
}

std::string model_fingerprint(const dfs::Graph& graph) {
    std::string key =
        util::format("%zu:", graph.name().size()) + graph.name();
    key += '\x1f';
    for (const dfs::NodeId n : graph.nodes()) {
        const auto& init = graph.initial(n);
        const std::string& name = graph.node_name(n);
        key += util::format("%zu:", name.size()) + name;
        key += util::format(
            ":%d:%d:%d;", static_cast<int>(graph.kind(n)),
            init.marked ? 1 : 0, static_cast<int>(init.token));
    }
    key += '\x1f';
    for (const dfs::NodeId n : graph.nodes()) {
        for (const dfs::NodeId m : graph.postset(n)) {
            key += util::format("%u>%u:%d;", n.value, m.value,
                                graph.is_inverted(n, m) ? 1 : 0);
        }
    }
    return key;
}

CompiledModel::CompiledModel(const dfs::Graph& graph)
    : translation_(dfs::to_petri(graph)), compiled_(translation_.net) {
    // Rough per-place / per-transition footprint of the translation +
    // CSR-compiled net; deterministic and monotone in model size, which
    // is all the LRU byte accounting needs.
    approx_bytes_ = 4096 + translation_.net.place_count() * 96 +
                    translation_.net.transition_count() * 256;
    g_builds.fetch_add(1, std::memory_order_relaxed);
}

CompiledModel::CompiledModel(const dfs::Graph& graph,
                             const CompiledModel& parent)
    : translation_(dfs::to_petri(graph)),
      compiled_(translation_.net, parent.compiled_) {
    approx_bytes_ = 4096 + translation_.net.place_count() * 96 +
                    translation_.net.transition_count() * 256;
    g_builds.fetch_add(1, std::memory_order_relaxed);
    g_delta_builds.fetch_add(1, std::memory_order_relaxed);
}

std::shared_ptr<const CompiledModel> compile_model(const dfs::Graph& graph) {
    return ArtifactCache::process_cache().get(graph);
}

std::size_t artifact_builds() noexcept {
    return g_builds.load(std::memory_order_relaxed);
}

std::size_t artifact_delta_builds() noexcept {
    return g_delta_builds.load(std::memory_order_relaxed);
}

}  // namespace rap::verify
