#include "verify/artifacts.hpp"

#include <atomic>
#include <deque>
#include <mutex>
#include <string>

#include "util/strings.hpp"

namespace rap::verify {

namespace {

std::atomic<std::size_t> g_builds{0};

/// Exact content fingerprint of a DFS model: every field the Fig. 3
/// translation reads. Two graphs with equal fingerprints translate to
/// identical nets, so the fingerprint is a sound cache key (full content,
/// not a hash — no collision risk). Names are length-prefixed so that
/// separator characters inside a node or graph name cannot forge another
/// model's key.
std::string fingerprint(const dfs::Graph& graph) {
    std::string key =
        util::format("%zu:", graph.name().size()) + graph.name();
    key += '\x1f';
    for (const dfs::NodeId n : graph.nodes()) {
        const auto& init = graph.initial(n);
        const std::string& name = graph.node_name(n);
        key += util::format("%zu:", name.size()) + name;
        key += util::format(
            ":%d:%d:%d;", static_cast<int>(graph.kind(n)),
            init.marked ? 1 : 0, static_cast<int>(init.token));
    }
    key += '\x1f';
    for (const dfs::NodeId n : graph.nodes()) {
        for (const dfs::NodeId m : graph.postset(n)) {
            key += util::format("%u>%u:%d;", n.value, m.value,
                                graph.is_inverted(n, m) ? 1 : 0);
        }
    }
    return key;
}

struct CacheEntry {
    std::string key;
    std::shared_ptr<const CompiledModel> model;
};

/// Most-recently-used first; bounded so long-running sweeps over many
/// configurations do not pin every compiled net in memory.
constexpr std::size_t kCacheCapacity = 8;

std::mutex g_cache_mutex;
std::deque<CacheEntry>& cache() {
    static std::deque<CacheEntry> entries;
    return entries;
}

}  // namespace

CompiledModel::CompiledModel(const dfs::Graph& graph)
    : translation_(dfs::to_petri(graph)), compiled_(translation_.net) {
    g_builds.fetch_add(1, std::memory_order_relaxed);
}

std::shared_ptr<const CompiledModel> compile_model(const dfs::Graph& graph) {
    const std::string key = fingerprint(graph);
    {
        const std::lock_guard<std::mutex> lock(g_cache_mutex);
        auto& entries = cache();
        for (auto it = entries.begin(); it != entries.end(); ++it) {
            if (it->key == key) {
                CacheEntry hit = *it;
                entries.erase(it);
                entries.push_front(hit);
                return hit.model;
            }
        }
    }
    // Build outside the lock: translation + CompiledNet construction is
    // the expensive part and must not serialise unrelated callers.
    auto model = std::make_shared<const CompiledModel>(graph);
    {
        const std::lock_guard<std::mutex> lock(g_cache_mutex);
        auto& entries = cache();
        entries.push_front({key, model});
        while (entries.size() > kCacheCapacity) entries.pop_back();
    }
    return model;
}

std::size_t artifact_builds() noexcept {
    return g_builds.load(std::memory_order_relaxed);
}

}  // namespace rap::verify
