#include "verify/verifier.hpp"

#include "util/strings.hpp"

namespace rap::verify {

std::string_view to_string(Property property) {
    switch (property) {
        case Property::Deadlock: return "deadlock";
        case Property::ControlConflict: return "control-conflict";
        case Property::Persistence: return "persistence";
        case Property::Custom: return "custom";
    }
    return "?";
}

std::string Finding::to_string() const {
    std::string out = std::string(rap::verify::to_string(property)) + ": ";
    if (truncated) out += "INCONCLUSIVE (state cap hit); ";
    out += violated ? "VIOLATED" : "ok";
    out += util::format(" [%zu states]", states_explored);
    if (!detail.empty()) out += " — " + detail;
    if (!trace.empty()) out += "\n  trace: " + util::join(trace, " -> ");
    return out;
}

std::string Report::to_string() const {
    std::vector<std::string> lines;
    lines.reserve(findings.size());
    for (const auto& f : findings) lines.push_back(f.to_string());
    return util::join(lines, "\n");
}

Verifier::Verifier(const dfs::Graph& graph, VerifyOptions options)
    : graph_(&graph), options_(options), translation_(dfs::to_petri(graph)) {}

Finding Verifier::from_reachability(Property property,
                                    const petri::ReachabilityResult& result,
                                    std::string detail_on_violation) const {
    Finding finding;
    finding.property = property;
    finding.states_explored = result.states_explored;
    finding.truncated = result.truncated;
    finding.violated = result.found();
    if (finding.violated) {
        finding.detail = std::move(detail_on_violation);
        if (result.witness) {
            finding.detail +=
                " at " + translation_.net.describe_marking(*result.witness);
        }
        if (result.witness_trace) {
            for (const auto t : result.witness_trace->firings) {
                finding.trace.push_back(translation_.net.transition_name(t));
            }
        }
    }
    return finding;
}

Finding Verifier::check_deadlock() const {
    petri::ReachabilityOptions ropts;
    ropts.max_states = options_.max_states;
    petri::ReachabilityExplorer explorer(translation_.net, ropts);
    const auto result = explorer.find(petri::Predicate::deadlock());
    return from_reachability(Property::Deadlock, result, "deadlock reachable");
}

Finding Verifier::check_control_conflict() const {
    // Build the Reach predicate: OR over all nodes with >=2 controls of
    // "every control marked, and both polarities present".
    const dfs::Graph& g = *graph_;
    struct Watched {
        dfs::NodeId node;
        std::vector<dfs::NodeId> controls;
        std::vector<bool> inverted;
    };
    std::vector<Watched> watched;
    for (dfs::NodeId n : g.nodes()) {
        const auto& controls = g.control_preset(n);
        if (controls.size() >= 2) {
            watched.push_back({n, controls, g.control_preset_inversion(n)});
        }
    }
    if (watched.empty()) {
        Finding finding;
        finding.property = Property::ControlConflict;
        finding.detail = "no node has multiple controls; trivially safe";
        return finding;
    }

    const auto& places = translation_.places;
    auto eval = [watched, &places](const petri::Net&,
                                   const petri::Marking& m) {
        for (const auto& w : watched) {
            bool all_marked = true;
            bool saw_true = false;
            bool saw_false = false;
            for (std::size_t i = 0; i < w.controls.size(); ++i) {
                const auto& slots = places[w.controls[i].value];
                if (!m.get(slots.m1.value)) {
                    all_marked = false;
                    break;
                }
                // Effective polarity after any inverting arc.
                const bool is_true = m.get(slots.mt1.value) != w.inverted[i];
                (is_true ? saw_true : saw_false) = true;
            }
            if (all_marked && saw_true && saw_false) return true;
        }
        return false;
    };

    petri::ReachabilityOptions ropts;
    ropts.max_states = options_.max_states;
    petri::ReachabilityExplorer explorer(translation_.net, ropts);
    const auto result = explorer.find(
        petri::Predicate::custom("control-conflict", eval));
    return from_reachability(Property::ControlConflict, result,
                             "mixed True/False controls disable a node");
}

Finding Verifier::check_persistence() const {
    // Intended choices: the Mt_x+ / Mf_x+ pair of the same node, i.e. the
    // non-deterministic outcome of a data-dependent predicate (Fig. 4).
    auto exempt = [](const petri::Net& net, petri::TransitionId a,
                     petri::TransitionId b) {
        const std::string& na = net.transition_name(a);
        const std::string& nb = net.transition_name(b);
        const bool a_plus =
            (util::starts_with(na, "Mt_") || util::starts_with(na, "Mf_")) &&
            na.back() == '+';
        const bool b_plus =
            (util::starts_with(nb, "Mt_") || util::starts_with(nb, "Mf_")) &&
            nb.back() == '+';
        if (!a_plus || !b_plus) return false;
        return na.substr(3) == nb.substr(3);
    };

    petri::PersistenceOptions popts;
    popts.max_states = options_.max_states;
    popts.exempt = exempt;
    const auto result = petri::check_persistence(translation_.net, popts);

    Finding finding;
    finding.property = Property::Persistence;
    finding.states_explored = result.states_explored;
    finding.truncated = result.truncated;
    finding.violated = !result.persistent();
    if (finding.violated) {
        const auto& v = result.violations.front();
        finding.detail = v.to_string(translation_.net);
        for (const auto t : v.trace_to_marking.firings) {
            finding.trace.push_back(translation_.net.transition_name(t));
        }
    }
    return finding;
}

Finding Verifier::check_custom(const petri::Predicate& predicate,
                               std::string description) const {
    petri::ReachabilityOptions ropts;
    ropts.max_states = options_.max_states;
    petri::ReachabilityExplorer explorer(translation_.net, ropts);
    const auto result = explorer.find(predicate);
    auto finding = from_reachability(Property::Custom, result,
                                     "predicate reachable");
    if (finding.detail.empty()) {
        finding.detail = description + ": unreachable";
    } else {
        finding.detail = description + ": " + finding.detail;
    }
    return finding;
}

Report Verifier::verify_all() const {
    Report report;
    report.findings.push_back(check_deadlock());
    report.findings.push_back(check_control_conflict());
    report.findings.push_back(check_persistence());
    return report;
}

}  // namespace rap::verify
