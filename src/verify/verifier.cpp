#include "verify/verifier.hpp"

#include "util/strings.hpp"

namespace rap::verify {

std::string_view to_string(Property property) {
    switch (property) {
        case Property::Deadlock: return "deadlock";
        case Property::ControlConflict: return "control-conflict";
        case Property::Persistence: return "persistence";
        case Property::Custom: return "custom";
    }
    return "?";
}

std::string Finding::to_string() const {
    std::string out = std::string(rap::verify::to_string(property)) + ": ";
    if (truncated) out += "INCONCLUSIVE (state cap hit); ";
    out += violated ? "VIOLATED" : "ok";
    out += util::format(" [%zu states]", states_explored);
    if (!detail.empty()) out += " — " + detail;
    if (!trace.empty()) out += "\n  trace: " + util::join(trace, " -> ");
    if (!dfs_trace.empty()) {
        out += "\n  events: " + util::join(dfs_trace, "; ");
    }
    return out;
}

std::string Report::to_string() const {
    // Findings are already in the canonical order (Deadlock,
    // ControlConflict, Persistence, customs in registration order); the
    // rendering preserves it so reports diff cleanly across runs.
    std::vector<std::string> lines;
    lines.reserve(findings.size());
    for (const auto& f : findings) lines.push_back(f.to_string());
    return util::join(lines, "\n");
}

Verifier::Verifier(const dfs::Graph& graph, VerifyOptions options)
    : graph_(&graph), options_(options), model_(compile_model(graph)) {}

Verifier::Verifier(const dfs::Graph& graph,
                   std::shared_ptr<const CompiledModel> model,
                   VerifyOptions options)
    : graph_(&graph), options_(options), model_(std::move(model)) {}

petri::MultiResult Verifier::run_exploration(const petri::MultiQuery& query,
                                             bool stop_at_first_match) const {
    petri::ReachabilityOptions ropts;
    ropts.max_states = options_.max_states;
    ropts.stop_at_first_match = stop_at_first_match;
    ropts.threads = options_.threads;
    ropts.frontier_enabled_cache = options_.frontier_enabled_cache;
    ropts.por = options_.por;
    ropts.stop = options_.stop;
    ropts.reuse = options_.reuse;
    ropts.compact_store = options_.compact_store;
    ropts.checkpoint_path = options_.checkpoint_path;
    ropts.checkpoint_every = options_.checkpoint_every;
    ropts.resume = options_.resume;
    // The parallel explorer shards the BFS frontier over the shared
    // compiled artifact; at one (resolved) thread it delegates to the
    // sequential engine's exact code path.
    petri::ParallelReachabilityExplorer explorer(model_->compiled(), ropts);
    ++explorations_;
    try {
        auto result = explorer.run_query(query);
        last_memory_ = result.memory;
        last_por_ = result.por;
        if (result.reuse_fallback) ++reuse_fallbacks_;
        return result;
    } catch (const petri::ExplorationAborted& e) {
        // The pass died mid-exploration but its interned footprint is
        // real: cache it so memory_stats() (and flow::Sweep's
        // peak-resident aggregation) still sees the partial pass.
        last_memory_ = e.memory;
        throw;
    }
}

void Verifier::fill_traces(Finding& finding,
                           const petri::Trace& trace) const {
    const dfs::Translation& tr = model_->translation();
    for (const auto t : trace.firings) {
        finding.trace.push_back(tr.net.transition_name(t));
        finding.dfs_trace.push_back(tr.describe_transition(*graph_, t));
        const auto& ev = tr.event(t);
        finding.event_trace.push_back({ev.node, ev.kind});
    }
}

Finding Verifier::from_reachability(Property property,
                                    const petri::ReachabilityResult& result,
                                    std::string detail_on_violation) const {
    Finding finding;
    finding.property = property;
    finding.states_explored = result.states_explored;
    finding.truncated = result.truncated;
    finding.violated = result.found();
    if (finding.violated) {
        finding.detail = std::move(detail_on_violation);
        if (result.witness) {
            finding.detail += " at " + model_->translation().net
                                           .describe_marking(*result.witness);
        }
        if (result.witness_trace) {
            fill_traces(finding, *result.witness_trace);
        }
    }
    return finding;
}

Finding Verifier::persistence_finding(
    const petri::MultiResult& multi) const {
    Finding finding;
    finding.property = Property::Persistence;
    finding.states_explored = multi.states_explored;
    finding.truncated = multi.truncated;
    finding.violated = !multi.persistence_violations.empty();
    if (finding.violated) {
        const dfs::Translation& tr = model_->translation();
        const auto& v = multi.persistence_violations.front();
        finding.detail = util::format(
            "%s — i.e. \"%s\" withdraws the enabling of \"%s\"",
            v.to_string(tr.net).c_str(),
            tr.describe_transition(*graph_, v.fired).c_str(),
            tr.describe_transition(*graph_, v.disabled).c_str());
        fill_traces(finding, v.trace_to_marking);
    }
    return finding;
}

std::optional<petri::Predicate> Verifier::control_conflict_predicate()
    const {
    // The Reach predicate: OR over all nodes with >=2 controls of "every
    // control marked, and both polarities present".
    const dfs::Graph& g = *graph_;
    struct Watched {
        dfs::NodeId node;
        std::vector<dfs::NodeId> controls;
        std::vector<bool> inverted;
    };
    std::vector<Watched> watched;
    for (dfs::NodeId n : g.nodes()) {
        const auto& controls = g.control_preset(n);
        if (controls.size() >= 2) {
            watched.push_back({n, controls, g.control_preset_inversion(n)});
        }
    }
    if (watched.empty()) return std::nullopt;

    const auto& places = model_->translation().places;
    // The predicate only reads the m1/mt1 slots of the watched controls;
    // declaring that support keeps partial-order reduction admissible
    // (an unknown-support goal would force full exploration).
    std::vector<petri::PlaceId> support;
    for (const auto& w : watched) {
        for (const dfs::NodeId c : w.controls) {
            support.push_back(places[c.value].m1);
            support.push_back(places[c.value].mt1);
        }
    }
    auto eval = [watched, &places](const petri::Net&,
                                   const petri::Marking& m) {
        for (const auto& w : watched) {
            bool all_marked = true;
            bool saw_true = false;
            bool saw_false = false;
            for (std::size_t i = 0; i < w.controls.size(); ++i) {
                const auto& slots = places[w.controls[i].value];
                if (!m.get(slots.m1.value)) {
                    all_marked = false;
                    break;
                }
                // Effective polarity after any inverting arc.
                const bool is_true = m.get(slots.mt1.value) != w.inverted[i];
                (is_true ? saw_true : saw_false) = true;
            }
            if (all_marked && saw_true && saw_false) return true;
        }
        return false;
    };
    return petri::Predicate::custom("control-conflict", std::move(eval),
                                    std::move(support));
}

bool Verifier::persistence_exempt(const petri::Net& net,
                                  petri::TransitionId a,
                                  petri::TransitionId b) {
    // Intended choices: the Mt_x+ / Mf_x+ pair of the same node, i.e. the
    // non-deterministic outcome of a data-dependent predicate (Fig. 4).
    const std::string& na = net.transition_name(a);
    const std::string& nb = net.transition_name(b);
    const bool a_plus =
        (util::starts_with(na, "Mt_") || util::starts_with(na, "Mf_")) &&
        na.back() == '+';
    const bool b_plus =
        (util::starts_with(nb, "Mt_") || util::starts_with(nb, "Mf_")) &&
        nb.back() == '+';
    if (!a_plus || !b_plus) return false;
    return na.substr(3) == nb.substr(3);
}

namespace {

Finding trivially_safe_conflict_finding(std::size_t states_explored,
                                        bool truncated) {
    Finding finding;
    finding.property = Property::ControlConflict;
    finding.detail = "no node has multiple controls; trivially safe";
    finding.states_explored = states_explored;
    finding.truncated = truncated;
    return finding;
}

}  // namespace

Report Verifier::run_spec(const Spec& spec, bool stop_at_first) const {
    // One exploration answers every requested property: deadlock,
    // control-conflict and any custom predicates as multi-goal
    // reachability, persistence along the explored edges. With more than
    // one open question the pass runs to exhaustion — early exit on one
    // property would leave the others unanswered — but keeps only the
    // first persistence counterexample.
    const auto deadlock_goal = petri::Predicate::deadlock();
    std::optional<petri::Predicate> conflict;
    const bool conflict_possible =
        spec.wants_control_conflict() &&
        (conflict = control_conflict_predicate()).has_value();

    petri::MultiQuery query;
    if (spec.wants_deadlock()) query.goals.push_back(&deadlock_goal);
    if (conflict_possible) query.goals.push_back(&*conflict);
    for (const auto& custom : spec.customs()) {
        query.goals.push_back(&custom.predicate);
    }
    if (spec.wants_persistence()) {
        query.check_persistence = true;
        query.persistence_exempt = &Verifier::persistence_exempt;
        if (stop_at_first) {
            query.persistence_stop_at_first = true;
        } else {
            query.persistence_max_violations = 1;
        }
    }

    petri::MultiResult multi;
    if (!query.goals.empty() || query.check_persistence) {
        multi = run_exploration(query, stop_at_first);
    }
    // else: the only requested property is a trivially safe
    // control-conflict — nothing to explore.

    // Findings in the canonical deterministic order.
    Report report;
    std::size_t goal = 0;
    if (spec.wants_deadlock()) {
        report.findings.push_back(from_reachability(
            Property::Deadlock, multi.goals[goal++], "deadlock reachable"));
    }
    if (spec.wants_control_conflict()) {
        if (conflict_possible) {
            report.findings.push_back(from_reachability(
                Property::ControlConflict, multi.goals[goal++],
                "mixed True/False controls disable a node"));
        } else {
            report.findings.push_back(trivially_safe_conflict_finding(
                multi.states_explored, multi.truncated));
        }
    }
    if (spec.wants_persistence()) {
        report.findings.push_back(persistence_finding(multi));
    }
    for (const auto& custom : spec.customs()) {
        auto finding = from_reachability(
            Property::Custom, multi.goals[goal++], "predicate reachable");
        if (finding.detail.empty()) {
            finding.detail = custom.description + ": unreachable";
        } else {
            finding.detail = custom.description + ": " + finding.detail;
        }
        report.findings.push_back(std::move(finding));
    }
    return report;
}

Report Verifier::verify(const Spec& spec) const {
    // A single open question may stop at its first answer; a combined
    // pass must exhaust the state space so every property gets an exact
    // answer.
    const std::size_t questions = (spec.wants_deadlock() ? 1u : 0u) +
                                  (spec.wants_control_conflict() ? 1u : 0u) +
                                  (spec.wants_persistence() ? 1u : 0u) +
                                  spec.customs().size();
    return run_spec(spec, /*stop_at_first=*/questions <= 1);
}

Finding Verifier::check_deadlock() const {
    return std::move(verify(Spec{}.deadlock()).findings.front());
}

Finding Verifier::check_control_conflict() const {
    return std::move(verify(Spec{}.control_conflict()).findings.front());
}

Finding Verifier::check_persistence() const {
    return std::move(verify(Spec{}.persistence()).findings.front());
}

Finding Verifier::check_custom(const petri::Predicate& predicate,
                               std::string description) const {
    return std::move(
        verify(Spec{}.custom(std::move(description), predicate))
            .findings.front());
}

Report Verifier::verify_all() const {
    return run_spec(Spec::standard(), /*stop_at_first=*/false);
}

}  // namespace rap::verify
