#include "verify/verifier.hpp"

#include "util/strings.hpp"

namespace rap::verify {

std::string_view to_string(Property property) {
    switch (property) {
        case Property::Deadlock: return "deadlock";
        case Property::ControlConflict: return "control-conflict";
        case Property::Persistence: return "persistence";
        case Property::Custom: return "custom";
    }
    return "?";
}

std::string Finding::to_string() const {
    std::string out = std::string(rap::verify::to_string(property)) + ": ";
    if (truncated) out += "INCONCLUSIVE (state cap hit); ";
    out += violated ? "VIOLATED" : "ok";
    out += util::format(" [%zu states]", states_explored);
    if (!detail.empty()) out += " — " + detail;
    if (!trace.empty()) out += "\n  trace: " + util::join(trace, " -> ");
    return out;
}

std::string Report::to_string() const {
    std::vector<std::string> lines;
    lines.reserve(findings.size());
    for (const auto& f : findings) lines.push_back(f.to_string());
    return util::join(lines, "\n");
}

Verifier::Verifier(const dfs::Graph& graph, VerifyOptions options)
    : graph_(&graph), options_(options), translation_(dfs::to_petri(graph)) {}

petri::MultiResult Verifier::run_exploration(const petri::MultiQuery& query,
                                             bool stop_at_first_match) const {
    petri::ReachabilityOptions ropts;
    ropts.max_states = options_.max_states;
    ropts.stop_at_first_match = stop_at_first_match;
    petri::ReachabilityExplorer explorer(translation_.net, ropts);
    ++explorations_;
    return explorer.run_query(query);
}

Finding Verifier::from_reachability(Property property,
                                    const petri::ReachabilityResult& result,
                                    std::string detail_on_violation) const {
    Finding finding;
    finding.property = property;
    finding.states_explored = result.states_explored;
    finding.truncated = result.truncated;
    finding.violated = result.found();
    if (finding.violated) {
        finding.detail = std::move(detail_on_violation);
        if (result.witness) {
            finding.detail +=
                " at " + translation_.net.describe_marking(*result.witness);
        }
        if (result.witness_trace) {
            for (const auto t : result.witness_trace->firings) {
                finding.trace.push_back(translation_.net.transition_name(t));
            }
        }
    }
    return finding;
}

Finding Verifier::persistence_finding(
    const petri::MultiResult& multi) const {
    Finding finding;
    finding.property = Property::Persistence;
    finding.states_explored = multi.states_explored;
    finding.truncated = multi.truncated;
    finding.violated = !multi.persistence_violations.empty();
    if (finding.violated) {
        const auto& v = multi.persistence_violations.front();
        finding.detail = v.to_string(translation_.net);
        for (const auto t : v.trace_to_marking.firings) {
            finding.trace.push_back(translation_.net.transition_name(t));
        }
    }
    return finding;
}

std::optional<petri::Predicate> Verifier::control_conflict_predicate()
    const {
    // The Reach predicate: OR over all nodes with >=2 controls of "every
    // control marked, and both polarities present".
    const dfs::Graph& g = *graph_;
    struct Watched {
        dfs::NodeId node;
        std::vector<dfs::NodeId> controls;
        std::vector<bool> inverted;
    };
    std::vector<Watched> watched;
    for (dfs::NodeId n : g.nodes()) {
        const auto& controls = g.control_preset(n);
        if (controls.size() >= 2) {
            watched.push_back({n, controls, g.control_preset_inversion(n)});
        }
    }
    if (watched.empty()) return std::nullopt;

    const auto& places = translation_.places;
    auto eval = [watched, &places](const petri::Net&,
                                   const petri::Marking& m) {
        for (const auto& w : watched) {
            bool all_marked = true;
            bool saw_true = false;
            bool saw_false = false;
            for (std::size_t i = 0; i < w.controls.size(); ++i) {
                const auto& slots = places[w.controls[i].value];
                if (!m.get(slots.m1.value)) {
                    all_marked = false;
                    break;
                }
                // Effective polarity after any inverting arc.
                const bool is_true = m.get(slots.mt1.value) != w.inverted[i];
                (is_true ? saw_true : saw_false) = true;
            }
            if (all_marked && saw_true && saw_false) return true;
        }
        return false;
    };
    return petri::Predicate::custom("control-conflict", std::move(eval));
}

bool Verifier::persistence_exempt(const petri::Net& net,
                                  petri::TransitionId a,
                                  petri::TransitionId b) {
    // Intended choices: the Mt_x+ / Mf_x+ pair of the same node, i.e. the
    // non-deterministic outcome of a data-dependent predicate (Fig. 4).
    const std::string& na = net.transition_name(a);
    const std::string& nb = net.transition_name(b);
    const bool a_plus =
        (util::starts_with(na, "Mt_") || util::starts_with(na, "Mf_")) &&
        na.back() == '+';
    const bool b_plus =
        (util::starts_with(nb, "Mt_") || util::starts_with(nb, "Mf_")) &&
        nb.back() == '+';
    if (!a_plus || !b_plus) return false;
    return na.substr(3) == nb.substr(3);
}

Finding Verifier::check_deadlock() const {
    const auto goal = petri::Predicate::deadlock();
    petri::MultiQuery query;
    query.goals = {&goal};
    const auto multi = run_exploration(query, /*stop_at_first_match=*/true);
    return from_reachability(Property::Deadlock, multi.goals[0],
                             "deadlock reachable");
}

namespace {

Finding trivially_safe_conflict_finding(std::size_t states_explored,
                                        bool truncated) {
    Finding finding;
    finding.property = Property::ControlConflict;
    finding.detail = "no node has multiple controls; trivially safe";
    finding.states_explored = states_explored;
    finding.truncated = truncated;
    return finding;
}

}  // namespace

Finding Verifier::check_control_conflict() const {
    const auto predicate = control_conflict_predicate();
    if (!predicate) {
        return trivially_safe_conflict_finding(0, false);
    }
    petri::MultiQuery query;
    query.goals = {&*predicate};
    const auto multi = run_exploration(query, /*stop_at_first_match=*/true);
    return from_reachability(Property::ControlConflict, multi.goals[0],
                             "mixed True/False controls disable a node");
}

Finding Verifier::check_persistence() const {
    petri::MultiQuery query;
    query.check_persistence = true;
    query.persistence_exempt = &Verifier::persistence_exempt;
    query.persistence_stop_at_first = true;
    const auto multi = run_exploration(query, /*stop_at_first_match=*/true);
    return persistence_finding(multi);
}

Finding Verifier::check_custom(const petri::Predicate& predicate,
                               std::string description) const {
    petri::MultiQuery query;
    query.goals = {&predicate};
    const auto multi = run_exploration(query, /*stop_at_first_match=*/true);
    auto finding = from_reachability(Property::Custom, multi.goals[0],
                                     "predicate reachable");
    if (finding.detail.empty()) {
        finding.detail = description + ": unreachable";
    } else {
        finding.detail = description + ": " + finding.detail;
    }
    return finding;
}

Report Verifier::verify_all(std::span<const CustomCheck> custom) const {
    // One exploration answers every property: deadlock and
    // control-conflict (and any custom predicates) as multi-goal
    // reachability, persistence along the explored edges. The pass runs
    // to exhaustion — early exit on one property would leave the others
    // unanswered — but keeps only the first persistence counterexample.
    const auto deadlock_goal = petri::Predicate::deadlock();
    const auto conflict = control_conflict_predicate();

    petri::MultiQuery query;
    query.goals.push_back(&deadlock_goal);
    if (conflict) query.goals.push_back(&*conflict);
    for (const CustomCheck& check : custom) {
        query.goals.push_back(check.predicate);
    }
    query.check_persistence = true;
    query.persistence_exempt = &Verifier::persistence_exempt;
    query.persistence_max_violations = 1;

    const auto multi = run_exploration(query, /*stop_at_first_match=*/false);

    Report report;
    report.findings.push_back(from_reachability(
        Property::Deadlock, multi.goals[0], "deadlock reachable"));
    if (conflict) {
        report.findings.push_back(from_reachability(
            Property::ControlConflict, multi.goals[1],
            "mixed True/False controls disable a node"));
    } else {
        report.findings.push_back(trivially_safe_conflict_finding(
            multi.states_explored, multi.truncated));
    }
    report.findings.push_back(persistence_finding(multi));

    const std::size_t first_custom = conflict ? 2 : 1;
    for (std::size_t i = 0; i < custom.size(); ++i) {
        auto finding =
            from_reachability(Property::Custom,
                              multi.goals[first_custom + i],
                              "predicate reachable");
        if (finding.detail.empty()) {
            finding.detail = custom[i].description + ": unreachable";
        } else {
            finding.detail = custom[i].description + ": " + finding.detail;
        }
        report.findings.push_back(std::move(finding));
    }
    return report;
}

}  // namespace rap::verify
