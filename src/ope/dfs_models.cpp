#include "ope/dfs_models.hpp"

#include <stdexcept>

namespace rap::ope {

pipeline::Pipeline build_static_ope_dfs(int stages) {
    if (stages < 1) {
        throw std::invalid_argument("OPE pipeline needs at least one stage");
    }
    std::vector<pipeline::StageOptions> options(
        static_cast<std::size_t>(stages));
    return pipeline::build_pipeline(
        "ope_static_" + std::to_string(stages), options);
}

pipeline::Pipeline build_reconfigurable_ope_dfs(int stages, int depth) {
    if (stages < min_depth()) {
        throw std::invalid_argument(
            "reconfigurable OPE needs at least 3 stages");
    }
    if (depth < min_depth() || depth > stages) {
        throw std::invalid_argument(
            "reconfigurable OPE depth must be in [3, stages]");
    }
    std::vector<pipeline::StageOptions> options;
    options.reserve(static_cast<std::size_t>(stages));
    for (int i = 0; i < stages; ++i) {
        pipeline::StageOptions opt;
        if (i == 0) {
            // s1: always included, static style.
            opt.reconfigurable = false;
        } else if (i == 1) {
            // s2: the Fig. 7 optimisation — one ring for both interfaces.
            opt.reconfigurable = true;
            opt.reuse_global_ring_for_local = true;
        } else {
            opt.reconfigurable = true;
        }
        opt.active = i < depth;
        options.push_back(opt);
    }
    auto p = pipeline::build_pipeline(
        "ope_reconfig_" + std::to_string(stages), options);
    return p;
}

}  // namespace rap::ope
