#pragma once

#include "pipeline/builder.hpp"

namespace rap::ope {

/// DFS model of the static OPE pipeline: `stages` identical static stages
/// (the chip's 18-stage implementation, Fig. 8a left core).
pipeline::Pipeline build_static_ope_dfs(int stages);

/// DFS model of the reconfigurable OPE pipeline (Fig. 7): stage s1 is
/// always included and built in the static style; s2 is reconfigurable
/// but reuses its global control ring for the local interface (sound
/// because s1 is static); s3..sN carry full local+global rings. The
/// initial configuration activates the first `depth` stages.
///
/// The chip supports depth 3..18 — enforced here as `min_depth() <= depth
/// <= stages`.
pipeline::Pipeline build_reconfigurable_ope_dfs(int stages, int depth);

/// Minimum depth of the reconfigurable pipeline (the chip's smallest
/// window size).
constexpr int min_depth() { return 3; }

}  // namespace rap::ope
