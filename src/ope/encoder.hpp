#pragma once

#include <cstdint>
#include <deque>
#include <optional>
#include <span>
#include <vector>

namespace rap::ope {

/// Rank list of one window (Section III-A): the rank of an item is the
/// position it ends up at after sorting the window, with ties resolved by
/// order of appearance (the paper's example ranks (3,1,4,1,5,9) as
/// (3,1,4,2,5,6) — the first '1' ranks below the second).
std::vector<int> rank_window(std::span<const std::int64_t> window);

/// Golden behavioural model: recomputes each window's rank list from
/// scratch. This is the "OPE behavioural model" the chip's checksums are
/// validated against (Section IV).
class ReferenceEncoder {
public:
    explicit ReferenceEncoder(int window_size);

    int window_size() const noexcept { return window_size_; }

    /// Feeds one item; once the window is full, returns the rank list of
    /// the current window (oldest item first).
    std::optional<std::vector<int>> push(std::int64_t item);

    /// Clears the window (e.g. after reconfiguring the size).
    void reset();

    /// Changes the window size; clears state.
    void reconfigure(int window_size);

private:
    int window_size_;
    std::deque<std::int64_t> window_;
};

/// Incremental encoder mirroring the pipelined accelerator of Guo et al.
/// [9]: the previous window's rank list is reused — sliding out the
/// oldest item decrements the ranks above it, and the incoming item's
/// rank is computed by the per-stage comparisons that the hardware
/// evaluates concurrently (one comparator per pipeline stage).
class PipelineEncoder {
public:
    explicit PipelineEncoder(int window_size);

    int window_size() const noexcept { return window_size_; }

    /// Feeds one item; returns the rank list once the window is full.
    std::optional<std::vector<int>> push(std::int64_t item);

    void reset();
    void reconfigure(int window_size);

    /// Number of stage-level compare operations performed so far — the
    /// work metric the timed chip model charges energy for.
    std::uint64_t compare_ops() const noexcept { return compare_ops_; }

private:
    int window_size_;
    std::deque<std::int64_t> window_;
    std::deque<int> ranks_;
    std::uint64_t compare_ops_ = 0;
};

/// Checksum accumulator of the evaluation chip (Fig. 8a): folds emitted
/// rank lists into a single word so a whole run produces one data item.
std::uint64_t fold_checksum(std::uint64_t acc, std::span<const int> ranks);

}  // namespace rap::ope
