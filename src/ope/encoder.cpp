#include "ope/encoder.hpp"

#include <stdexcept>

namespace rap::ope {

std::vector<int> rank_window(std::span<const std::int64_t> window) {
    const std::size_t n = window.size();
    std::vector<int> ranks(n);
    for (std::size_t i = 0; i < n; ++i) {
        int rank = 1;
        for (std::size_t j = 0; j < n; ++j) {
            if (window[j] < window[i]) ++rank;
            if (window[j] == window[i] && j < i) ++rank;
        }
        ranks[i] = rank;
    }
    return ranks;
}

namespace {

void check_window_size(int window_size) {
    if (window_size < 1) {
        throw std::invalid_argument("OPE window size must be positive");
    }
}

}  // namespace

ReferenceEncoder::ReferenceEncoder(int window_size)
    : window_size_(window_size) {
    check_window_size(window_size);
}

std::optional<std::vector<int>> ReferenceEncoder::push(std::int64_t item) {
    window_.push_back(item);
    if (window_.size() > static_cast<std::size_t>(window_size_)) {
        window_.pop_front();
    }
    if (window_.size() < static_cast<std::size_t>(window_size_)) {
        return std::nullopt;
    }
    const std::vector<std::int64_t> items(window_.begin(), window_.end());
    return rank_window(items);
}

void ReferenceEncoder::reset() { window_.clear(); }

void ReferenceEncoder::reconfigure(int window_size) {
    check_window_size(window_size);
    window_size_ = window_size;
    reset();
}

PipelineEncoder::PipelineEncoder(int window_size)
    : window_size_(window_size) {
    check_window_size(window_size);
}

std::optional<std::vector<int>> PipelineEncoder::push(std::int64_t item) {
    const auto n = static_cast<std::size_t>(window_size_);
    if (window_.size() == n) {
        // Slide out the oldest item: every rank above it drops by one.
        const int removed_rank = ranks_.front();
        window_.pop_front();
        ranks_.pop_front();
        for (int& r : ranks_) {
            ++compare_ops_;
            if (r > removed_rank) --r;
        }
    }

    // The incoming item is the youngest, so equal values rank below it:
    // its rank counts items <= it; survivors strictly above it move up.
    // Each stage performs exactly one comparison — this is the concurrent
    // per-stage work of the accelerator.
    int new_rank = 1;
    for (std::size_t j = 0; j < window_.size(); ++j) {
        ++compare_ops_;
        if (window_[j] <= item) {
            ++new_rank;
        } else {
            ++ranks_[j];
        }
    }
    window_.push_back(item);
    ranks_.push_back(new_rank);

    if (window_.size() < n) return std::nullopt;
    return std::vector<int>(ranks_.begin(), ranks_.end());
}

void PipelineEncoder::reset() {
    window_.clear();
    ranks_.clear();
}

void PipelineEncoder::reconfigure(int window_size) {
    check_window_size(window_size);
    window_size_ = window_size;
    reset();
}

std::uint64_t fold_checksum(std::uint64_t acc, std::span<const int> ranks) {
    for (const int r : ranks) {
        acc ^= static_cast<std::uint64_t>(r) + 0x9e3779b97f4a7c15ULL +
               (acc << 6) + (acc >> 2);
    }
    return acc;
}

}  // namespace rap::ope
