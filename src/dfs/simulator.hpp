#pragma once

#include <cstdint>
#include <optional>
#include <unordered_map>
#include <vector>

#include "dfs/dynamics.hpp"
#include "util/rng.hpp"

namespace rap::dfs {

/// Outcome of an untimed random-walk simulation.
struct SimStats {
    std::uint64_t steps = 0;
    bool deadlocked = false;
    std::optional<NodeId> conflict;  ///< first control conflict observed

    /// Per-node count of Mark/MarkTrue/MarkFalse events — the number of
    /// tokens that passed through each register.
    std::vector<std::uint64_t> marks;
    /// Of which MarkFalse (destroyed/empty/False tokens).
    std::vector<std::uint64_t> false_marks;

    std::uint64_t marks_at(NodeId n) const { return marks.at(n.value); }
    std::uint64_t false_marks_at(NodeId n) const {
        return false_marks.at(n.value);
    }
};

/// Untimed interleaving simulator: picks one enabled event uniformly at
/// random per step. This is the "interactive simulation" of the Workcraft
/// plugin, driven by a seed instead of mouse clicks; tests use it to
/// cross-validate the dynamics against the Petri-net translation and to
/// measure relative token throughput.
class Simulator {
public:
    Simulator(const Dynamics& dynamics, std::uint64_t seed = 1);

    /// Runs up to `max_steps` events from `state` (updated in place).
    /// Stops early on deadlock. Control conflicts are recorded but do not
    /// stop the run (they may resolve once controls unmark).
    SimStats run(State& state, std::uint64_t max_steps);

    /// Convenience: run from the initial state.
    SimStats run_from_initial(std::uint64_t max_steps);

    /// Biases the True/False choice of *free* control registers (those
    /// with no upstream controls): probability of choosing True when both
    /// polarities are enabled. Default 0.5. This models the data
    /// distribution feeding a `cond` predicate (Fig. 1b).
    void set_true_bias(double bias) { true_bias_ = bias; }

private:
    const Dynamics* dynamics_;
    util::Rng rng_;
    double true_bias_ = 0.5;
};

}  // namespace rap::dfs
