#include "dfs/translate.hpp"

#include <algorithm>
#include <stdexcept>

namespace rap::dfs {
namespace {

/// One conjunct of a transition's enabling condition: a required value of
/// another node's state variable, realised as a read arc on the matching
/// place.
struct Atom {
    enum class Var { C, M, Mt, Mf };
    NodeId node;
    Var var;
    bool value;
};

class Builder {
public:
    explicit Builder(const Graph& graph) : graph_(graph) {
        graph.ensure_valid();
        result_.net = petri::Net(graph.name() + "_pn");
    }

    Translation build() {
        make_places();
        for (NodeId n : graph_.nodes()) make_transitions(n);
        return std::move(result_);
    }

private:
    void make_places() {
        auto& net = result_.net;
        result_.places.resize(graph_.node_count());
        for (NodeId n : graph_.nodes()) {
            auto& slots = result_.places[n.value];
            const std::string& name = graph_.node_name(n);
            if (graph_.is_logic(n)) {
                slots.c0 = net.add_place("C_" + name + "_0", true);
                slots.c1 = net.add_place("C_" + name + "_1", false);
                continue;
            }
            const InitialMarking& init = graph_.initial(n);
            slots.m0 = net.add_place("M_" + name + "_0", !init.marked);
            slots.m1 = net.add_place("M_" + name + "_1", init.marked);
            if (graph_.is_dynamic(n)) {
                const bool t = init.marked && init.token == TokenValue::True;
                const bool f = init.marked && init.token == TokenValue::False;
                slots.mt0 = net.add_place("Mt_" + name + "_0", !t);
                slots.mt1 = net.add_place("Mt_" + name + "_1", t);
                slots.mf0 = net.add_place("Mf_" + name + "_0", !f);
                slots.mf1 = net.add_place("Mf_" + name + "_1", f);
            }
        }
    }

    petri::PlaceId place_for(const Atom& atom) const {
        const auto& slots = result_.places[atom.node.value];
        switch (atom.var) {
            case Atom::Var::C: return atom.value ? slots.c1 : slots.c0;
            case Atom::Var::M: return atom.value ? slots.m1 : slots.m0;
            case Atom::Var::Mt: return atom.value ? slots.mt1 : slots.mt0;
            case Atom::Var::Mf: return atom.value ? slots.mf1 : slots.mf0;
        }
        throw std::logic_error("bad atom");
    }

    // -- condition fragments mirroring Dynamics ------------------------

    void preset_logic(std::vector<Atom>& atoms, NodeId n, bool value) const {
        for (NodeId k : graph_.preset(n)) {
            if (graph_.is_logic(k)) atoms.push_back({k, Atom::Var::C, value});
        }
    }

    /// Requires q to be "marked with a real token": Mt for pushes, plain
    /// M otherwise (Eq. 3/4 push gating).
    void marked_real(std::vector<Atom>& atoms, NodeId q) const {
        if (graph_.kind(q) == NodeKind::Push) {
            atoms.push_back({q, Atom::Var::Mt, true});
        } else {
            atoms.push_back({q, Atom::Var::M, true});
        }
    }

    void r_preset_marked(std::vector<Atom>& atoms, NodeId n) const {
        for (NodeId q : graph_.r_preset(n)) marked_real(atoms, q);
    }

    void r_preset_unmarked(std::vector<Atom>& atoms, NodeId n) const {
        for (NodeId q : graph_.r_preset(n)) {
            atoms.push_back({q, Atom::Var::M, false});
        }
    }

    void r_postset_unmarked(std::vector<Atom>& atoms, NodeId n) const {
        for (NodeId q : graph_.r_postset(n)) {
            atoms.push_back({q, Atom::Var::M, false});
        }
    }

    /// "R-postset took the token" (Eq. 4): pops must be Mt unless `n` is
    /// the pop's own control register.
    void r_postset_took(std::vector<Atom>& atoms, NodeId n) const {
        const bool n_is_control = graph_.kind(n) == NodeKind::Control;
        for (NodeId q : graph_.r_postset(n)) {
            if (graph_.kind(q) == NodeKind::Pop) {
                const auto& cpre = graph_.control_preset(q);
                const bool exempt =
                    n_is_control &&
                    std::binary_search(cpre.begin(), cpre.end(), n);
                atoms.push_back(
                    {q, exempt ? Atom::Var::M : Atom::Var::Mt, true});
            } else {
                atoms.push_back({q, Atom::Var::M, true});
            }
        }
    }

    void controlled(std::vector<Atom>& atoms, NodeId n, bool polarity) const {
        const auto& controls = graph_.control_preset(n);
        const auto& inverted = graph_.control_preset_inversion(n);
        for (std::size_t i = 0; i < controls.size(); ++i) {
            // An inverting arc swaps which marking place satisfies the
            // required effective polarity.
            const bool want_true = polarity != inverted[i];
            atoms.push_back(
                {controls[i], want_true ? Atom::Var::Mt : Atom::Var::Mf,
                 true});
        }
    }

    std::vector<Atom> mark_set_atoms(NodeId r) const {
        std::vector<Atom> atoms;
        preset_logic(atoms, r, true);
        r_preset_marked(atoms, r);
        r_postset_unmarked(atoms, r);
        return atoms;
    }

    std::vector<Atom> mark_reset_atoms(NodeId r) const {
        std::vector<Atom> atoms;
        preset_logic(atoms, r, false);
        r_preset_unmarked(atoms, r);
        r_postset_took(atoms, r);
        return atoms;
    }

    // -- transition emission --------------------------------------------

    petri::TransitionId emit(const std::string& name,
                             const std::vector<petri::PlaceId>& consume,
                             const std::vector<petri::PlaceId>& produce,
                             const std::vector<Atom>& atoms,
                             Translation::TransitionEvent event) {
        auto& net = result_.net;
        const petri::TransitionId t = net.add_transition(name);
        result_.events_.push_back(event);
        for (petri::PlaceId p : consume) net.add_input_arc(p, t);
        for (petri::PlaceId p : produce) net.add_output_arc(t, p);
        // Read arcs: deduplicate places (an atom may coincide with a
        // consumed place — the consume arc already implies the test).
        std::vector<petri::PlaceId> reads;
        for (const Atom& atom : atoms) reads.push_back(place_for(atom));
        std::sort(reads.begin(), reads.end());
        reads.erase(std::unique(reads.begin(), reads.end()), reads.end());
        for (petri::PlaceId p : reads) {
            if (std::find(consume.begin(), consume.end(), p) ==
                consume.end()) {
                net.add_read_arc(p, t);
            }
        }
        result_.transitions_.emplace(name, t);
        return t;
    }

    void make_transitions(NodeId n) {
        const auto& slots = result_.places[n.value];
        const std::string& name = graph_.node_name(n);
        switch (graph_.kind(n)) {
            case NodeKind::Logic: {
                std::vector<Atom> up;
                for (NodeId k : graph_.preset(n)) {
                    if (graph_.is_logic(k)) {
                        up.push_back({k, Atom::Var::C, true});
                    } else {
                        marked_real(up, k);
                    }
                }
                emit("C_" + name + "+", {slots.c0}, {slots.c1}, up,
                     {n, EventKind::LogicEvaluate, std::nullopt});

                std::vector<Atom> down;
                for (NodeId k : graph_.preset(n)) {
                    if (graph_.is_logic(k)) {
                        down.push_back({k, Atom::Var::C, false});
                    } else {
                        down.push_back({k, Atom::Var::M, false});
                    }
                }
                emit("C_" + name + "-", {slots.c1}, {slots.c0}, down,
                     {n, EventKind::LogicReset, std::nullopt});
                break;
            }
            case NodeKind::Register: {
                emit("M_" + name + "+", {slots.m0}, {slots.m1},
                     mark_set_atoms(n), {n, EventKind::Mark, std::nullopt});
                emit("M_" + name + "-", {slots.m1}, {slots.m0},
                     mark_reset_atoms(n),
                     {n, EventKind::Unmark, std::nullopt});
                break;
            }
            case NodeKind::Control: {
                const auto& cpre = graph_.control_preset(n);
                auto t_atoms = mark_set_atoms(n);
                auto f_atoms = t_atoms;
                if (!cpre.empty()) {
                    controlled(t_atoms, n, true);
                    controlled(f_atoms, n, false);
                }
                emit("Mt_" + name + "+", {slots.m0, slots.mt0},
                     {slots.m1, slots.mt1}, t_atoms,
                     {n, EventKind::MarkTrue, TokenValue::True});
                emit("Mf_" + name + "+", {slots.m0, slots.mf0},
                     {slots.m1, slots.mf1}, f_atoms,
                     {n, EventKind::MarkFalse, TokenValue::False});
                const auto down = mark_reset_atoms(n);
                emit("Mt_" + name + "-", {slots.m1, slots.mt1},
                     {slots.m0, slots.mt0}, down,
                     {n, EventKind::Unmark, TokenValue::True});
                emit("Mf_" + name + "-", {slots.m1, slots.mf1},
                     {slots.m0, slots.mf0}, down,
                     {n, EventKind::Unmark, TokenValue::False});
                break;
            }
            case NodeKind::Push: {
                auto t_atoms = mark_set_atoms(n);
                controlled(t_atoms, n, true);
                emit("Mt_" + name + "+", {slots.m0, slots.mt0},
                     {slots.m1, slots.mt1}, t_atoms,
                     {n, EventKind::MarkTrue, TokenValue::True});

                // Mf+: consume-and-destroy — no postset atoms.
                std::vector<Atom> f_atoms;
                preset_logic(f_atoms, n, true);
                r_preset_marked(f_atoms, n);
                controlled(f_atoms, n, false);
                emit("Mf_" + name + "+", {slots.m0, slots.mf0},
                     {slots.m1, slots.mf1}, f_atoms,
                     {n, EventKind::MarkFalse, TokenValue::False});

                emit("Mt_" + name + "-", {slots.m1, slots.mt1},
                     {slots.m0, slots.mt0}, mark_reset_atoms(n),
                     {n, EventKind::Unmark, TokenValue::True});

                // Mf-: the destroyed token leaves without the R-postset.
                std::vector<Atom> f_down;
                preset_logic(f_down, n, false);
                r_preset_unmarked(f_down, n);
                emit("Mf_" + name + "-", {slots.m1, slots.mf1},
                     {slots.m0, slots.mf0}, f_down,
                     {n, EventKind::Unmark, TokenValue::False});
                break;
            }
            case NodeKind::Pop: {
                auto t_atoms = mark_set_atoms(n);
                controlled(t_atoms, n, true);
                emit("Mt_" + name + "+", {slots.m0, slots.mt0},
                     {slots.m1, slots.mt1}, t_atoms,
                     {n, EventKind::MarkTrue, TokenValue::True});

                // Mf+: self-produced empty token — only output space and
                // False controls required.
                std::vector<Atom> f_atoms;
                r_postset_unmarked(f_atoms, n);
                controlled(f_atoms, n, false);
                emit("Mf_" + name + "+", {slots.m0, slots.mf0},
                     {slots.m1, slots.mf1}, f_atoms,
                     {n, EventKind::MarkFalse, TokenValue::False});

                emit("Mt_" + name + "-", {slots.m1, slots.mt1},
                     {slots.m0, slots.mt0}, mark_reset_atoms(n),
                     {n, EventKind::Unmark, TokenValue::True});

                // Mf-: leaves once taken downstream and controls moved on.
                std::vector<Atom> f_down;
                r_postset_took(f_down, n);
                for (NodeId c : graph_.control_preset(n)) {
                    f_down.push_back({c, Atom::Var::M, false});
                }
                emit("Mf_" + name + "-", {slots.m1, slots.mf1},
                     {slots.m0, slots.mf0}, f_down,
                     {n, EventKind::Unmark, TokenValue::False});
                break;
            }
        }
    }

    const Graph& graph_;
    Translation result_;
};

}  // namespace

petri::TransitionId Translation::transition_for(const Graph& graph,
                                                const Event& e,
                                                bool token_true) const {
    const std::string& name = graph.node_name(e.node);
    std::string key;
    switch (e.kind) {
        case EventKind::LogicEvaluate: key = "C_" + name + "+"; break;
        case EventKind::LogicReset: key = "C_" + name + "-"; break;
        case EventKind::Mark: key = "M_" + name + "+"; break;
        case EventKind::MarkTrue: key = "Mt_" + name + "+"; break;
        case EventKind::MarkFalse: key = "Mf_" + name + "+"; break;
        case EventKind::Unmark:
            if (!graph.is_dynamic(e.node)) {
                key = "M_" + name + "-";
            } else {
                key = (token_true ? "Mt_" : "Mf_") + name + "-";
            }
            break;
    }
    const auto it = transitions_.find(key);
    if (it == transitions_.end()) {
        throw std::invalid_argument("no PN transition for event " + key);
    }
    return it->second;
}

std::string Translation::describe_transition(const Graph& graph,
                                             petri::TransitionId t) const {
    const TransitionEvent& e = event(t);
    const std::string& name = graph.node_name(e.node);
    const bool token_true = e.token == TokenValue::True;
    switch (graph.kind(e.node)) {
        case NodeKind::Logic:
            return (e.kind == EventKind::LogicEvaluate ? "logic " + name +
                                                             " evaluates"
                                                       : "logic " + name +
                                                             " resets");
        case NodeKind::Register:
            return e.kind == EventKind::Mark
                       ? "register " + name + " accepts a token"
                       : "register " + name + " releases its token";
        case NodeKind::Control:
            switch (e.kind) {
                case EventKind::MarkTrue:
                    return "control " + name + " latches True";
                case EventKind::MarkFalse:
                    return "control " + name + " latches False";
                default:
                    return "control " + name + " releases its " +
                           (token_true ? "True" : "False") + " token";
            }
        case NodeKind::Push:
            switch (e.kind) {
                case EventKind::MarkTrue:
                    return "push " + name + " passes a token";
                case EventKind::MarkFalse:
                    return "push " + name + " destroys a bypassed token";
                default:
                    return "push " + name + " releases its " +
                           (token_true ? "passed" : "destroyed") + " token";
            }
        case NodeKind::Pop:
            switch (e.kind) {
                case EventKind::MarkTrue:
                    return "pop " + name + " takes a token";
                case EventKind::MarkFalse:
                    return "pop " + name + " produces an empty token";
                default:
                    return "pop " + name + " releases its " +
                           (token_true ? "real" : "empty") + " token";
            }
    }
    return "fire " + net.transition_name(t);
}

petri::Marking Translation::encode(const Graph& graph, const State& s) const {
    petri::Marking m(net.place_count());
    for (NodeId n : graph.nodes()) {
        const auto& slots = places[n.value];
        if (graph.is_logic(n)) {
            m.set((s.logic_evaluated(n) ? slots.c1 : slots.c0).value, true);
            continue;
        }
        m.set((s.marked(n) ? slots.m1 : slots.m0).value, true);
        if (graph.is_dynamic(n)) {
            const bool t = s.marked(n) && s.token_true(n);
            const bool f = s.marked(n) && !s.token_true(n);
            m.set((t ? slots.mt1 : slots.mt0).value, true);
            m.set((f ? slots.mf1 : slots.mf0).value, true);
        }
    }
    return m;
}

Translation to_petri(const Graph& graph) {
    return Builder(graph).build();
}

}  // namespace rap::dfs
