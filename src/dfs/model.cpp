#include "dfs/model.hpp"

#include <algorithm>
#include <deque>
#include <stdexcept>
#include <unordered_map>
#include <unordered_set>

#include "util/strings.hpp"

namespace rap::dfs {

std::string_view to_string(NodeKind kind) {
    switch (kind) {
        case NodeKind::Logic: return "logic";
        case NodeKind::Register: return "register";
        case NodeKind::Control: return "control";
        case NodeKind::Push: return "push";
        case NodeKind::Pop: return "pop";
    }
    return "?";
}

NodeId Graph::add_logic(std::string_view name) {
    if (find(name)) {
        throw std::invalid_argument("duplicate node name: " +
                                    std::string(name));
    }
    kinds_.push_back(NodeKind::Logic);
    names_.emplace_back(name);
    initials_.push_back({});
    invalidate_cache();
    return NodeId{static_cast<std::uint32_t>(kinds_.size() - 1)};
}

namespace {

NodeId add_reg_impl(std::vector<NodeKind>& kinds,
                    std::vector<std::string>& names,
                    std::vector<InitialMarking>& initials, NodeKind kind,
                    std::string_view name, bool marked, TokenValue token) {
    kinds.push_back(kind);
    names.emplace_back(name);
    initials.push_back({marked, token});
    return NodeId{static_cast<std::uint32_t>(kinds.size() - 1)};
}

}  // namespace

NodeId Graph::add_register(std::string_view name, bool marked) {
    if (find(name)) {
        throw std::invalid_argument("duplicate node name: " +
                                    std::string(name));
    }
    invalidate_cache();
    return add_reg_impl(kinds_, names_, initials_, NodeKind::Register, name,
                        marked, TokenValue::True);
}

NodeId Graph::add_control(std::string_view name, bool marked,
                          TokenValue token) {
    if (find(name)) {
        throw std::invalid_argument("duplicate node name: " +
                                    std::string(name));
    }
    invalidate_cache();
    return add_reg_impl(kinds_, names_, initials_, NodeKind::Control, name,
                        marked, token);
}

NodeId Graph::add_push(std::string_view name, bool marked, TokenValue token) {
    if (find(name)) {
        throw std::invalid_argument("duplicate node name: " +
                                    std::string(name));
    }
    invalidate_cache();
    return add_reg_impl(kinds_, names_, initials_, NodeKind::Push, name,
                        marked, token);
}

NodeId Graph::add_pop(std::string_view name, bool marked, TokenValue token) {
    if (find(name)) {
        throw std::invalid_argument("duplicate node name: " +
                                    std::string(name));
    }
    invalidate_cache();
    return add_reg_impl(kinds_, names_, initials_, NodeKind::Pop, name,
                        marked, token);
}

void Graph::connect(NodeId from, NodeId to) {
    if (from.value >= kinds_.size() || to.value >= kinds_.size()) {
        throw std::invalid_argument("connect: node id out of range");
    }
    if (from == to) {
        throw std::invalid_argument("connect: self-loop on node '" +
                                    names_[from.value] + "'");
    }
    if (std::find(edges_.begin(), edges_.end(),
                  std::make_pair(from, to)) != edges_.end()) {
        throw std::invalid_argument("connect: duplicate edge " +
                                    names_[from.value] + " -> " +
                                    names_[to.value]);
    }
    edges_.emplace_back(from, to);
    edge_inverted_.push_back(false);
    invalidate_cache();
}

void Graph::connect_inverted(NodeId from, NodeId to) {
    if (from.value >= kinds_.size() ||
        kinds_[from.value] != NodeKind::Control) {
        throw std::invalid_argument(
            "connect_inverted: only control registers can drive "
            "inverting arcs");
    }
    connect(from, to);
    edge_inverted_.back() = true;
}

bool Graph::is_inverted(NodeId from, NodeId to) const {
    for (std::size_t i = 0; i < edges_.size(); ++i) {
        if (edges_[i] == std::make_pair(from, to)) return edge_inverted_[i];
    }
    return false;
}

void Graph::set_initial(NodeId node, bool marked, TokenValue token) {
    if (is_logic(node)) {
        throw std::invalid_argument("set_initial: '" + names_[node.value] +
                                    "' is a logic node");
    }
    initials_[node.value] = {marked, token};
}

std::size_t Graph::edge_count() const noexcept { return edges_.size(); }

std::optional<NodeId> Graph::find(std::string_view name) const {
    for (std::size_t i = 0; i < names_.size(); ++i) {
        if (names_[i] == name) {
            return NodeId{static_cast<std::uint32_t>(i)};
        }
    }
    return std::nullopt;
}

std::vector<NodeId> Graph::nodes() const {
    std::vector<NodeId> out;
    out.reserve(kinds_.size());
    for (std::uint32_t i = 0; i < kinds_.size(); ++i) out.push_back(NodeId{i});
    return out;
}

std::vector<NodeId> Graph::registers() const {
    std::vector<NodeId> out;
    for (std::uint32_t i = 0; i < kinds_.size(); ++i) {
        if (kinds_[i] != NodeKind::Logic) out.push_back(NodeId{i});
    }
    return out;
}

std::vector<NodeId> Graph::logics() const {
    std::vector<NodeId> out;
    for (std::uint32_t i = 0; i < kinds_.size(); ++i) {
        if (kinds_[i] == NodeKind::Logic) out.push_back(NodeId{i});
    }
    return out;
}

const std::vector<NodeId>& Graph::preset(NodeId n) const {
    build_cache();
    return preset_[n.value];
}

const std::vector<NodeId>& Graph::postset(NodeId n) const {
    build_cache();
    return postset_[n.value];
}

const std::vector<NodeId>& Graph::r_preset(NodeId n) const {
    build_cache();
    return r_preset_[n.value];
}

const std::vector<NodeId>& Graph::r_postset(NodeId n) const {
    build_cache();
    return r_postset_[n.value];
}

const std::vector<NodeId>& Graph::control_preset(NodeId n) const {
    build_cache();
    return control_preset_[n.value];
}

const std::vector<bool>& Graph::control_preset_inversion(NodeId n) const {
    build_cache();
    return control_preset_inverted_[n.value];
}

void Graph::build_cache() const {
    if (cache_valid_) return;
    const std::size_t n = kinds_.size();
    preset_.assign(n, {});
    postset_.assign(n, {});
    r_preset_.assign(n, {});
    r_postset_.assign(n, {});
    control_preset_.assign(n, {});
    control_preset_inverted_.assign(n, {});

    std::unordered_set<std::uint64_t> inverted_pairs;
    for (std::size_t i = 0; i < edges_.size(); ++i) {
        const auto& [from, to] = edges_[i];
        postset_[from.value].push_back(to);
        preset_[to.value].push_back(from);
        if (edge_inverted_[i]) {
            inverted_pairs.insert(
                (static_cast<std::uint64_t>(from.value) << 32) | to.value);
        }
    }

    // R-preset of x: registers y with a logic path y -> ... -> x, where
    // every intermediate node is logic. Backwards BFS through logic.
    for (std::uint32_t i = 0; i < n; ++i) {
        std::unordered_set<std::uint32_t> seen_logic;
        std::unordered_set<std::uint32_t> found;
        std::deque<std::uint32_t> frontier;
        for (NodeId p : preset_[i]) frontier.push_back(p.value);
        while (!frontier.empty()) {
            const std::uint32_t v = frontier.front();
            frontier.pop_front();
            if (kinds_[v] != NodeKind::Logic) {
                found.insert(v);
                continue;
            }
            if (!seen_logic.insert(v).second) continue;
            for (NodeId p : preset_[v]) frontier.push_back(p.value);
        }
        for (std::uint32_t v : found) {
            r_preset_[i].push_back(NodeId{v});
            // x? contains registers only: a logic node is never a member
            // of anyone's R-postset.
            if (kinds_[i] != NodeKind::Logic) {
                r_postset_[v].push_back(NodeId{i});
            }
            if (kinds_[v] == NodeKind::Control) {
                control_preset_[i].push_back(NodeId{v});
            }
        }
    }

    auto sort_all = [](std::vector<std::vector<NodeId>>& sets) {
        for (auto& s : sets) std::sort(s.begin(), s.end());
    };
    sort_all(r_preset_);
    sort_all(r_postset_);
    sort_all(control_preset_);
    // Inversion flags aligned with the sorted control presets. Inverting
    // arcs are direct edges (control -> consumer); a control reached only
    // through logic is never inverted.
    for (std::uint32_t i = 0; i < n; ++i) {
        control_preset_inverted_[i].reserve(control_preset_[i].size());
        for (const NodeId c : control_preset_[i]) {
            const std::uint64_t key =
                (static_cast<std::uint64_t>(c.value) << 32) | i;
            control_preset_inverted_[i].push_back(
                inverted_pairs.contains(key));
        }
    }
    cache_valid_ = true;
}

std::vector<std::string> Graph::validate() const {
    std::vector<std::string> issues;
    build_cache();

    // Logic-only cycles are combinational loops: the evaluation state of
    // the loop is circularly defined (Eq. 1 has no solution order).
    {
        // Colours: 0 unvisited, 1 on stack, 2 done. DFS over logic nodes
        // following logic->logic edges only.
        std::vector<int> colour(kinds_.size(), 0);
        std::vector<std::uint32_t> stack;
        auto visit = [&](std::uint32_t root, auto&& self) -> bool {
            colour[root] = 1;
            for (NodeId next : postset_[root]) {
                if (kinds_[next.value] != NodeKind::Logic) continue;
                if (colour[next.value] == 1) return true;
                if (colour[next.value] == 0 && self(next.value, self)) {
                    return true;
                }
            }
            colour[root] = 2;
            return false;
        };
        for (std::uint32_t i = 0; i < kinds_.size(); ++i) {
            if (kinds_[i] == NodeKind::Logic && colour[i] == 0 &&
                visit(i, visit)) {
                issues.push_back(
                    "combinational loop through logic node '" + names_[i] +
                    "'");
                break;
            }
        }
    }

    for (std::uint32_t i = 0; i < kinds_.size(); ++i) {
        const NodeId node{i};
        const NodeKind k = kinds_[i];
        if ((k == NodeKind::Push || k == NodeKind::Pop) &&
            control_preset_[i].empty()) {
            issues.push_back(std::string(to_string(k)) + " node '" +
                             names_[i] +
                             "' has no control register in its R-preset");
        }
        if (k == NodeKind::Logic) {
            if (preset_[i].empty()) {
                issues.push_back("logic node '" + names_[i] +
                                 "' has an empty preset");
            }
            if (postset_[i].empty()) {
                issues.push_back("logic node '" + names_[i] +
                                 "' has an empty postset");
            }
            if (initials_[i].marked) {
                issues.push_back("logic node '" + names_[i] +
                                 "' cannot be initially marked");
            }
        }
        (void)node;
    }
    return issues;
}

void Graph::ensure_valid() const {
    const auto issues = validate();
    if (issues.empty()) return;
    throw std::invalid_argument("invalid DFS model '" + name_ + "': " +
                                util::join(issues, "; "));
}

}  // namespace rap::dfs
