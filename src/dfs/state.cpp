#include "dfs/state.hpp"

namespace rap::dfs {

State State::initial(const Graph& graph) {
    State s;
    const std::size_t n = graph.node_count();
    s.c_base_ = 0;
    s.m_base_ = n;
    s.t_base_ = 2 * n;
    s.bits_ = util::BitVec(3 * n);
    for (NodeId r : graph.registers()) {
        const InitialMarking& init = graph.initial(r);
        if (!init.marked) continue;
        const bool token =
            graph.is_dynamic(r) ? (init.token == TokenValue::True) : false;
        s.set_marked(r, true, token);
    }
    return s;
}

std::string State::describe(const Graph& graph) const {
    std::string out = "C={";
    bool first = true;
    for (NodeId l : graph.logics()) {
        if (!logic_evaluated(l)) continue;
        if (!first) out += ", ";
        out += graph.node_name(l);
        first = false;
    }
    out += "} M={";
    first = true;
    for (NodeId r : graph.registers()) {
        if (!marked(r)) continue;
        if (!first) out += ", ";
        out += graph.node_name(r);
        if (graph.is_dynamic(r)) out += token_true(r) ? "=T" : "=F";
        first = false;
    }
    out += "}";
    return out;
}

}  // namespace rap::dfs
