#pragma once

#include <optional>
#include <string>
#include <vector>

#include "dfs/model.hpp"
#include "dfs/state.hpp"

namespace rap::dfs {

/// Atomic state changes of the DFS token game. Each corresponds to one
/// signal edge of the node's state variable in the Petri-net semantics
/// (C_l±, M_r±, Mt_r±/Mf_r±).
enum class EventKind : std::uint8_t {
    LogicEvaluate,  ///< C(l): 0 -> 1   (Cd↑)
    LogicReset,     ///< C(l): 1 -> 0   (Cd↓)
    Mark,           ///< M(r): 0 -> 1 for static registers (Md↑)
    Unmark,         ///< M(r): 1 -> 0 (Md↓; relaxed for false push/pop)
    MarkTrue,       ///< dynamic register latches a True/real token (Mt+)
    MarkFalse,      ///< dynamic register latches a False token (Mf+):
                    ///< control: False value; push: token destroyed;
                    ///< pop: empty token produced
};

std::string_view to_string(EventKind kind);

struct Event {
    NodeId node;
    EventKind kind = EventKind::Mark;
    friend bool operator==(const Event&, const Event&) = default;
};

/// Executable semantics of the DFS equations (Section II, Eq. 1–5 plus the
/// interpretation notes in DESIGN.md §2). Stateless with respect to the
/// token game: all queries take the State explicitly, so the same Dynamics
/// can serve the untimed simulator, the timed simulator and the verifier.
class Dynamics {
public:
    explicit Dynamics(const Graph& graph);

    const Graph& graph() const noexcept { return *graph_; }

    /// All events a node could ever emit (used to enumerate candidates).
    std::vector<Event> node_events(NodeId n) const;

    /// Enabledness of a single event at a state.
    bool is_enabled(const State& s, const Event& e) const;

    /// All enabled events, in node order.
    std::vector<Event> enabled_events(const State& s) const;

    /// Applies an enabled event. Precondition: is_enabled(s, e).
    void apply(State& s, const Event& e) const;

    /// True iff no event is enabled — a DFS-level deadlock.
    bool is_deadlocked(const State& s) const;

    /// Control conflict (Section II-B): some node's control preset is
    /// fully marked but carries both True and False tokens, permanently
    /// disabling the node. Returns the first such node.
    std::optional<NodeId> control_conflict(const State& s) const;

    // -- the equations, exposed for tests and the PN translation -------
    bool eval_set(const State& s, NodeId l) const;    ///< Cd↑(l)
    bool eval_reset(const State& s, NodeId l) const;  ///< Cd↓(l)
    bool mark_set(const State& s, NodeId r) const;    ///< Md↑(r)
    bool mark_reset(const State& s, NodeId r) const;  ///< Md↓(r)

    /// All control registers in n's R-preset marked True (resp. False).
    /// Empty control preset => neither true- nor false-controlled...
    /// except that true_controlled() treats "no controls" as vacuously
    /// true for *static* set/reset gating (uncontrolled nodes behave
    /// statically).
    bool true_controlled(const State& s, NodeId n) const;
    bool false_controlled(const State& s, NodeId n) const;

private:
    bool preset_logic_evaluated(const State& s, NodeId n) const;
    bool preset_logic_reset(const State& s, NodeId n) const;
    bool r_preset_marked(const State& s, NodeId n) const;
    bool r_preset_unmarked(const State& s, NodeId n) const;
    bool r_postset_unmarked(const State& s, NodeId n) const;
    /// All R-postset registers marked; pops count only when Mt (Eq. 4).
    bool r_postset_took_token(const State& s, NodeId n) const;
    /// Every push in the R-preset carries a real token (Eq. 3/4 gating).
    bool r_preset_pushes_true(const State& s, NodeId n) const;
    /// Every push directly preceding logic l carries a real token (Eq. 3).
    bool preset_pushes_true(const State& s, NodeId l) const;

    const Graph* graph_;
};

}  // namespace rap::dfs
