#pragma once

#include <string>

#include "dfs/model.hpp"
#include "util/bitvec.hpp"

namespace rap::dfs {

/// Runtime state of a DFS model:
///  * C(l)  — evaluation state of each logic node,
///  * M(r)  — marking of each register node,
///  * T(r)  — latched token flag of each *dynamic* register: for control
///    registers the token value (True/False), for push/pop whether the
///    node was true-controlled when it latched (the paper's Mt function).
///
/// Invariant: T(r) == false whenever M(r) == false (cleared on unmarking),
/// so Mt(r) = M(r) ∧ T(r) and Mf(r) = M(r) ∧ ¬T(r).
class State {
public:
    State() = default;

    /// Builds the initial state from the graph's initial markings; all
    /// logic starts reset (C = 0).
    static State initial(const Graph& graph);

    bool logic_evaluated(NodeId l) const {
        return bits_.get(c_base_ + l.value);
    }
    bool marked(NodeId r) const { return bits_.get(m_base_ + r.value); }
    bool token_true(NodeId r) const { return bits_.get(t_base_ + r.value); }

    /// Mt(r): marked and carrying a "real"/True token. Static registers
    /// always carry real tokens, so Mt(r) == M(r) for them.
    bool marked_true(const Graph& graph, NodeId r) const {
        if (!marked(r)) return false;
        return graph.is_dynamic(r) ? token_true(r) : true;
    }

    /// Mf(r): marked with a False/destroyed/empty token.
    bool marked_false(const Graph& graph, NodeId r) const {
        return graph.is_dynamic(r) && marked(r) && !token_true(r);
    }

    void set_logic(NodeId l, bool evaluated) {
        bits_.set(c_base_ + l.value, evaluated);
    }
    void set_marked(NodeId r, bool marked, bool token = false) {
        bits_.set(m_base_ + r.value, marked);
        bits_.set(t_base_ + r.value, marked && token);
    }

    /// Canonical encoding for hashing / reachability sets.
    const util::BitVec& bits() const noexcept { return bits_; }

    friend bool operator==(const State& a, const State& b) noexcept {
        return a.bits_ == b.bits_;
    }

    /// Human-readable summary: names of evaluated logic and marked
    /// registers (with token polarity for dynamic ones).
    std::string describe(const Graph& graph) const;

private:
    // Layout: [C for every node][M for every node][T for every node];
    // indexing by raw node id keeps the encoding trivially stable.
    std::size_t c_base_ = 0;
    std::size_t m_base_ = 0;
    std::size_t t_base_ = 0;
    util::BitVec bits_;
};

struct StateHash {
    std::size_t operator()(const State& s) const noexcept {
        return s.bits().hash();
    }
};

}  // namespace rap::dfs
