#pragma once

#include <string>
#include <string_view>

#include "dfs/model.hpp"

namespace rap::dfs {

/// Plain-text interchange format for DFS models (the library's analogue
/// of Workcraft's .work files), line-oriented and diff-friendly:
///
///   dfs <model-name>
///   logic <name>
///   register <name> [*]            # '*' marks the initial token
///   control <name> [T|F]           # marked with a True/False token
///   push <name> [T|F]
///   pop <name> [T|F]
///   edge <from> <to> [inv]         # 'inv' = inverting control arc
///   # comments and blank lines are ignored
///
/// Node lines must precede the edges that use them.
std::string to_text(const Graph& graph);

/// Parses the format above. Throws std::invalid_argument with a
/// line-numbered message on malformed input.
Graph from_text(std::string_view text);

/// File convenience wrappers; throw std::runtime_error on I/O failure.
void save_file(const Graph& graph, const std::string& path);
Graph load_file(const std::string& path);

}  // namespace rap::dfs
