#include "dfs/dynamics.hpp"

#include <algorithm>
#include <cassert>

namespace rap::dfs {

std::string_view to_string(EventKind kind) {
    switch (kind) {
        case EventKind::LogicEvaluate: return "evaluate";
        case EventKind::LogicReset: return "reset";
        case EventKind::Mark: return "mark";
        case EventKind::Unmark: return "unmark";
        case EventKind::MarkTrue: return "mark-true";
        case EventKind::MarkFalse: return "mark-false";
    }
    return "?";
}

Dynamics::Dynamics(const Graph& graph) : graph_(&graph) {
    graph.ensure_valid();
}

std::vector<Event> Dynamics::node_events(NodeId n) const {
    switch (graph_->kind(n)) {
        case NodeKind::Logic:
            return {{n, EventKind::LogicEvaluate}, {n, EventKind::LogicReset}};
        case NodeKind::Register:
            return {{n, EventKind::Mark}, {n, EventKind::Unmark}};
        case NodeKind::Control:
        case NodeKind::Push:
        case NodeKind::Pop:
            return {{n, EventKind::MarkTrue},
                    {n, EventKind::MarkFalse},
                    {n, EventKind::Unmark}};
    }
    return {};
}

// ---------------------------------------------------------------------------
// Structural state predicates
// ---------------------------------------------------------------------------

bool Dynamics::preset_logic_evaluated(const State& s, NodeId n) const {
    for (NodeId k : graph_->preset(n)) {
        if (graph_->is_logic(k) && !s.logic_evaluated(k)) return false;
    }
    return true;
}

bool Dynamics::preset_logic_reset(const State& s, NodeId n) const {
    for (NodeId k : graph_->preset(n)) {
        if (graph_->is_logic(k) && s.logic_evaluated(k)) return false;
    }
    return true;
}

bool Dynamics::r_preset_marked(const State& s, NodeId n) const {
    for (NodeId q : graph_->r_preset(n)) {
        if (!s.marked(q)) return false;
    }
    return true;
}

bool Dynamics::r_preset_unmarked(const State& s, NodeId n) const {
    for (NodeId q : graph_->r_preset(n)) {
        if (s.marked(q)) return false;
    }
    return true;
}

bool Dynamics::r_postset_unmarked(const State& s, NodeId n) const {
    for (NodeId q : graph_->r_postset(n)) {
        if (s.marked(q)) return false;
    }
    return true;
}

bool Dynamics::r_postset_took_token(const State& s, NodeId n) const {
    // Eq. 4: a pop in the R-postset counts as having taken the token only
    // when it latched while true-controlled (Mt); an Mf pop produced an
    // unrelated empty token and must not release this register. The one
    // exception is the pop's own *control* register: the pop latches the
    // configuration token on either polarity, which acknowledges it —
    // without this a False configuration token could never be returned.
    const bool n_is_control = graph_->kind(n) == NodeKind::Control;
    for (NodeId q : graph_->r_postset(n)) {
        if (!s.marked(q)) return false;
        if (graph_->kind(q) == NodeKind::Pop && !s.token_true(q)) {
            const auto& cpre = graph_->control_preset(q);
            const bool n_controls_q =
                n_is_control &&
                std::binary_search(cpre.begin(), cpre.end(), n);
            if (!n_controls_q) return false;
        }
    }
    return true;
}

bool Dynamics::r_preset_pushes_true(const State& s, NodeId n) const {
    for (NodeId q : graph_->r_preset(n)) {
        if (graph_->kind(q) == NodeKind::Push && !s.marked_true(*graph_, q)) {
            return false;
        }
    }
    return true;
}

bool Dynamics::preset_pushes_true(const State& s, NodeId l) const {
    for (NodeId q : graph_->preset(l)) {
        if (graph_->kind(q) == NodeKind::Push && !s.marked_true(*graph_, q)) {
            return false;
        }
    }
    return true;
}

bool Dynamics::true_controlled(const State& s, NodeId n) const {
    const auto& controls = graph_->control_preset(n);
    const auto& inverted = graph_->control_preset_inversion(n);
    for (std::size_t i = 0; i < controls.size(); ++i) {
        const NodeId c = controls[i];
        if (!s.marked(c)) return false;
        // Inverting arcs (Section II-B extension): the consumer observes
        // the complement of the control token.
        if (s.token_true(c) == inverted[i]) return false;
    }
    return true;
}

bool Dynamics::false_controlled(const State& s, NodeId n) const {
    const auto& controls = graph_->control_preset(n);
    const auto& inverted = graph_->control_preset_inversion(n);
    if (controls.empty()) return false;
    for (std::size_t i = 0; i < controls.size(); ++i) {
        const NodeId c = controls[i];
        if (!s.marked(c)) return false;
        if (s.token_true(c) != inverted[i]) return false;
    }
    return true;
}

// ---------------------------------------------------------------------------
// The set/reset equations
// ---------------------------------------------------------------------------

bool Dynamics::eval_set(const State& s, NodeId l) const {
    // Cd↑(l), Eq. 1 + 3: preset logic evaluated, preset registers marked,
    // and every directly-preceding push carries a real token.
    for (NodeId k : graph_->preset(l)) {
        if (graph_->is_logic(k)) {
            if (!s.logic_evaluated(k)) return false;
        } else {
            if (!s.marked(k)) return false;
        }
    }
    return preset_pushes_true(s, l);
}

bool Dynamics::eval_reset(const State& s, NodeId l) const {
    // Cd↓(l), Eq. 1 + 3: preset logic reset, preset registers unmarked.
    // (The push term of Eq. 3 is subsumed: an unmarked push has no token.)
    for (NodeId k : graph_->preset(l)) {
        if (graph_->is_logic(k)) {
            if (s.logic_evaluated(k)) return false;
        } else {
            if (s.marked(k)) return false;
        }
    }
    return true;
}

bool Dynamics::mark_set(const State& s, NodeId r) const {
    // Md↑(r), Eq. 2 + 4: preset logic evaluated, R-preset marked (pushes
    // with real tokens only), R-postset unmarked.
    return preset_logic_evaluated(s, r) && r_preset_marked(s, r) &&
           r_preset_pushes_true(s, r) && r_postset_unmarked(s, r);
}

bool Dynamics::mark_reset(const State& s, NodeId r) const {
    // Md↓(r), Eq. 2 + 4: preset logic reset, R-preset unmarked, R-postset
    // holding the propagated token (pops only when true-controlled).
    return preset_logic_reset(s, r) && r_preset_unmarked(s, r) &&
           r_postset_took_token(s, r);
}

// ---------------------------------------------------------------------------
// Event enabling
// ---------------------------------------------------------------------------

bool Dynamics::is_enabled(const State& s, const Event& e) const {
    const NodeId n = e.node;
    switch (e.kind) {
        case EventKind::LogicEvaluate:
            return !s.logic_evaluated(n) && eval_set(s, n);
        case EventKind::LogicReset:
            return s.logic_evaluated(n) && eval_reset(s, n);
        case EventKind::Mark:
            assert(graph_->kind(n) == NodeKind::Register);
            return !s.marked(n) && mark_set(s, n);
        case EventKind::Unmark: {
            if (!s.marked(n)) return false;
            switch (graph_->kind(n)) {
                case NodeKind::Register:
                case NodeKind::Control:
                    return mark_reset(s, n);
                case NodeKind::Push:
                    // A destroyed token (Mf) leaves without any R-postset
                    // interaction; a real token behaves statically.
                    if (s.token_true(n)) return mark_reset(s, n);
                    return preset_logic_reset(s, n) &&
                           r_preset_unmarked(s, n);
                case NodeKind::Pop:
                    // An empty token (Mf) was produced out of thin air: it
                    // leaves when the R-postset took it and the control
                    // preset has moved on; the data preset was never
                    // involved.
                    if (s.token_true(n)) return mark_reset(s, n);
                    if (!r_postset_took_token(s, n)) return false;
                    for (NodeId c : graph_->control_preset(n)) {
                        if (s.marked(c)) return false;
                    }
                    return true;
                case NodeKind::Logic:
                    return false;
            }
            return false;
        }
        case EventKind::MarkTrue: {
            if (s.marked(n)) return false;
            switch (graph_->kind(n)) {
                case NodeKind::Control: {
                    if (!mark_set(s, n)) return false;
                    // Eq. 5: copy a True token from upstream controls;
                    // with no upstream controls the value is a free
                    // (non-deterministic) data-dependent choice.
                    const auto& cpre = graph_->control_preset(n);
                    if (cpre.empty()) return true;
                    return true_controlled(s, n);
                }
                case NodeKind::Push:
                case NodeKind::Pop:
                    // Operates as a static register when true-controlled.
                    return true_controlled(s, n) && mark_set(s, n);
                default:
                    return false;
            }
        }
        case EventKind::MarkFalse: {
            if (s.marked(n)) return false;
            switch (graph_->kind(n)) {
                case NodeKind::Control: {
                    if (!mark_set(s, n)) return false;
                    const auto& cpre = graph_->control_preset(n);
                    if (cpre.empty()) return true;
                    return false_controlled(s, n);
                }
                case NodeKind::Push:
                    // Consumes and destroys an incoming token: needs the
                    // incoming token (preset logic evaluated, R-preset
                    // marked with real pushes) but ignores the R-postset —
                    // nothing will propagate.
                    return false_controlled(s, n) &&
                           preset_logic_evaluated(s, n) &&
                           r_preset_marked(s, n) &&
                           r_preset_pushes_true(s, n);
                case NodeKind::Pop:
                    // Produces an 'empty' token: ignores the data preset
                    // entirely; needs only output space. The controls are
                    // marked False by definition of false_controlled.
                    return false_controlled(s, n) &&
                           r_postset_unmarked(s, n);
                default:
                    return false;
            }
        }
    }
    return false;
}

std::vector<Event> Dynamics::enabled_events(const State& s) const {
    std::vector<Event> out;
    for (NodeId n : graph_->nodes()) {
        for (const Event& e : node_events(n)) {
            if (is_enabled(s, e)) out.push_back(e);
        }
    }
    return out;
}

void Dynamics::apply(State& s, const Event& e) const {
    assert(is_enabled(s, e));
    switch (e.kind) {
        case EventKind::LogicEvaluate:
            s.set_logic(e.node, true);
            break;
        case EventKind::LogicReset:
            s.set_logic(e.node, false);
            break;
        case EventKind::Mark:
            s.set_marked(e.node, true, false);
            break;
        case EventKind::Unmark:
            s.set_marked(e.node, false, false);
            break;
        case EventKind::MarkTrue:
            s.set_marked(e.node, true, true);
            break;
        case EventKind::MarkFalse:
            s.set_marked(e.node, true, false);
            break;
    }
}

bool Dynamics::is_deadlocked(const State& s) const {
    for (NodeId n : graph_->nodes()) {
        for (const Event& e : node_events(n)) {
            if (is_enabled(s, e)) return false;
        }
    }
    return true;
}

std::optional<NodeId> Dynamics::control_conflict(const State& s) const {
    for (NodeId n : graph_->nodes()) {
        const auto& controls = graph_->control_preset(n);
        if (controls.size() < 2) continue;
        const auto& inverted = graph_->control_preset_inversion(n);
        bool all_marked = true;
        bool saw_true = false;
        bool saw_false = false;
        for (std::size_t i = 0; i < controls.size(); ++i) {
            const NodeId c = controls[i];
            if (!s.marked(c)) {
                all_marked = false;
                break;
            }
            // Effective (post-inversion) token value.
            (s.token_true(c) != inverted[i] ? saw_true : saw_false) = true;
        }
        if (all_marked && saw_true && saw_false) return n;
    }
    return std::nullopt;
}

}  // namespace rap::dfs
