#include "dfs/simulator.hpp"

#include <algorithm>

namespace rap::dfs {

Simulator::Simulator(const Dynamics& dynamics, std::uint64_t seed)
    : dynamics_(&dynamics), rng_(seed) {}

SimStats Simulator::run(State& state, std::uint64_t max_steps) {
    const Graph& graph = dynamics_->graph();
    SimStats stats;
    stats.marks.assign(graph.node_count(), 0);
    stats.false_marks.assign(graph.node_count(), 0);

    for (std::uint64_t step = 0; step < max_steps; ++step) {
        std::vector<Event> enabled = dynamics_->enabled_events(state);
        if (enabled.empty()) {
            stats.deadlocked = true;
            break;
        }
        if (!stats.conflict) {
            stats.conflict = dynamics_->control_conflict(state);
        }

        // When both polarities of the same free-choice control register
        // are enabled, resolve with the configured bias; otherwise pick
        // uniformly among all enabled events.
        Event chosen = enabled[rng_.below(enabled.size())];
        if (chosen.kind == EventKind::MarkTrue ||
            chosen.kind == EventKind::MarkFalse) {
            const Event twin{chosen.node,
                             chosen.kind == EventKind::MarkTrue
                                 ? EventKind::MarkFalse
                                 : EventKind::MarkTrue};
            if (std::find(enabled.begin(), enabled.end(), twin) !=
                enabled.end()) {
                chosen.kind = rng_.chance(true_bias_) ? EventKind::MarkTrue
                                                      : EventKind::MarkFalse;
            }
        }

        dynamics_->apply(state, chosen);
        ++stats.steps;
        if (chosen.kind == EventKind::Mark ||
            chosen.kind == EventKind::MarkTrue ||
            chosen.kind == EventKind::MarkFalse) {
            ++stats.marks[chosen.node.value];
            if (chosen.kind == EventKind::MarkFalse) {
                ++stats.false_marks[chosen.node.value];
            }
        }
    }
    return stats;
}

SimStats Simulator::run_from_initial(std::uint64_t max_steps) {
    State state = State::initial(dynamics_->graph());
    return run(state, max_steps);
}

}  // namespace rap::dfs
