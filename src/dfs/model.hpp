#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace rap::dfs {

/// The five DFS node types of Fig. 2: the two static SDFS kinds (logic,
/// register) plus the dynamic extension (control, push, pop registers).
enum class NodeKind : std::uint8_t {
    Logic,     ///< combinational dataflow component
    Register,  ///< static sequential component (token holder)
    Control,   ///< register holding a True/False reconfiguration token
    Push,      ///< destroys incoming tokens when false-controlled
    Pop,       ///< produces 'empty' tokens when false-controlled
};

std::string_view to_string(NodeKind kind);

/// Token polarity for dynamic registers.
enum class TokenValue : std::uint8_t { False = 0, True = 1 };

struct NodeId {
    std::uint32_t value = UINT32_MAX;
    friend bool operator==(NodeId, NodeId) = default;
    friend auto operator<=>(NodeId, NodeId) = default;
};

/// Initial condition of a register node.
struct InitialMarking {
    bool marked = false;
    /// Token value for marked dynamic registers; True for push/pop means
    /// "was true-controlled when it latched". Ignored for static/logic.
    TokenValue token = TokenValue::True;
};

/// A dataflow structure: DFS = <V, E, M0> with V = L ∪ R (Section II).
///
/// The graph is append-only: analyses precompute and cache the derived
/// structural sets (presets, postsets, R-presets/R-postsets through logic
/// paths, control presets) on first use; any mutation invalidates the
/// cache. Node names must be unique — they become Petri-net place names
/// and Verilog identifiers downstream.
class Graph {
public:
    explicit Graph(std::string name = "dfs") : name_(std::move(name)) {}

    const std::string& name() const noexcept { return name_; }

    // -- construction ------------------------------------------------
    NodeId add_logic(std::string_view name);
    NodeId add_register(std::string_view name, bool marked = false);
    NodeId add_control(std::string_view name, bool marked, TokenValue token);
    NodeId add_push(std::string_view name, bool marked = false,
                    TokenValue token = TokenValue::True);
    NodeId add_pop(std::string_view name, bool marked = false,
                   TokenValue token = TokenValue::True);

    /// Adds a dataflow edge from -> to. Self-loops are rejected.
    void connect(NodeId from, NodeId to);

    /// Adds an *inverting* control arc: `to` observes the complement of
    /// the control token held by `from`. This is the paper's Section II-B
    /// extension ("Boolean algebra on True and False tokens using
    /// inverting arcs"), the building block of wagging-style structures.
    /// Only control registers can drive inverting arcs.
    void connect_inverted(NodeId from, NodeId to);

    /// True iff the (from, to) edge is an inverting control arc.
    bool is_inverted(NodeId from, NodeId to) const;

    /// Changes the initial marking of a register node after construction
    /// (used to seed the buggy initialisations the verifier must catch).
    void set_initial(NodeId node, bool marked,
                     TokenValue token = TokenValue::True);

    // -- basic introspection -------------------------------------------
    std::size_t node_count() const noexcept { return kinds_.size(); }
    std::size_t edge_count() const noexcept;
    NodeKind kind(NodeId n) const { return kinds_.at(n.value); }
    const std::string& node_name(NodeId n) const { return names_.at(n.value); }
    const InitialMarking& initial(NodeId n) const {
        return initials_.at(n.value);
    }
    std::optional<NodeId> find(std::string_view name) const;

    bool is_logic(NodeId n) const { return kind(n) == NodeKind::Logic; }
    bool is_register_kind(NodeId n) const { return !is_logic(n); }
    bool is_dynamic(NodeId n) const {
        const NodeKind k = kind(n);
        return k == NodeKind::Control || k == NodeKind::Push ||
               k == NodeKind::Pop;
    }

    /// All node ids, in insertion order.
    std::vector<NodeId> nodes() const;
    /// All register-kind node ids (Register/Control/Push/Pop).
    std::vector<NodeId> registers() const;
    /// All logic node ids.
    std::vector<NodeId> logics() const;

    // -- derived structure (cached) ------------------------------------
    /// Direct preset / postset (• x and x •).
    const std::vector<NodeId>& preset(NodeId n) const;
    const std::vector<NodeId>& postset(NodeId n) const;

    /// R-preset ?x / R-postset x?: registers connected through logic-only
    /// paths (direct register neighbours included).
    const std::vector<NodeId>& r_preset(NodeId n) const;
    const std::vector<NodeId>& r_postset(NodeId n) const;

    /// Control registers in the R-preset — the registers that decide
    /// whether `n` is true- or false-controlled.
    const std::vector<NodeId>& control_preset(NodeId n) const;

    /// Per-entry inversion flags aligned with control_preset(n): true
    /// when the control arc is inverting (the consumer observes the
    /// complement of the token).
    const std::vector<bool>& control_preset_inversion(NodeId n) const;

    // -- validation -----------------------------------------------------
    /// Structural well-formedness diagnostics. Empty result = valid model.
    /// Checked: logic-only cycles (combinational loops), push/pop without
    /// a controlling register, dangling logic (logic with no preset or no
    /// postset cannot stabilise).
    std::vector<std::string> validate() const;

    /// Throws std::invalid_argument listing all diagnostics if invalid.
    void ensure_valid() const;

private:
    void invalidate_cache() const noexcept { cache_valid_ = false; }
    void build_cache() const;

    std::string name_;
    std::vector<NodeKind> kinds_;
    std::vector<std::string> names_;
    std::vector<InitialMarking> initials_;
    std::vector<std::pair<NodeId, NodeId>> edges_;
    std::vector<bool> edge_inverted_;  // parallel to edges_

    mutable bool cache_valid_ = false;
    mutable std::vector<std::vector<NodeId>> preset_;
    mutable std::vector<std::vector<NodeId>> postset_;
    mutable std::vector<std::vector<NodeId>> r_preset_;
    mutable std::vector<std::vector<NodeId>> r_postset_;
    mutable std::vector<std::vector<NodeId>> control_preset_;
    mutable std::vector<std::vector<bool>> control_preset_inverted_;
};

}  // namespace rap::dfs
