#pragma once

#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "dfs/dynamics.hpp"
#include "dfs/model.hpp"
#include "dfs/state.hpp"
#include "petri/net.hpp"

namespace rap::dfs {

/// Result of the Fig. 3 translation: the Petri net plus the bookkeeping
/// needed to map DFS states/events onto markings/transitions (used by the
/// verifier to translate counterexample traces back to DFS terms, and by
/// the bisimulation tests).
struct Translation {
    petri::Net net;

    /// Per node: the place ids of its variable encodings. Static nodes use
    /// only the `m` (registers) or `c` (logic) pair; dynamic registers add
    /// the Mt/Mf pairs of Fig. 3c.
    struct NodePlaces {
        petri::PlaceId c0, c1;    // logic evaluation state
        petri::PlaceId m0, m1;    // register marking
        petri::PlaceId mt0, mt1;  // true-token flag (dynamic only)
        petri::PlaceId mf0, mf1;  // false-token flag (dynamic only)
    };
    std::vector<NodePlaces> places;  // indexed by NodeId::value

    /// Maps a DFS event to its PN transition. Unmark of a dynamic register
    /// maps to two transitions (Mt- / Mf-) selected by the current token
    /// flag, hence the extra parameter.
    petri::TransitionId transition_for(const Graph& graph, const Event& e,
                                       bool token_true) const;

    /// Encodes a DFS state as a PN marking (for initial-state agreement
    /// and bisimulation checks).
    petri::Marking encode(const Graph& graph, const State& s) const;

    /// Transition lookup by the Fig. 3 naming convention ("Mt_filt+", …).
    /// Populated by to_petri; exposed so that verification reports can
    /// resolve names cheaply.
    std::unordered_map<std::string, petri::TransitionId> transitions_;

    /// Reverse of transition_for: the DFS event each PN transition
    /// realises. `token` is the polarity carried by the Mt/Mf pair of a
    /// dynamic register (nullopt for logic and static registers).
    struct TransitionEvent {
        NodeId node;
        EventKind kind = EventKind::Mark;
        std::optional<TokenValue> token;
    };
    std::vector<TransitionEvent> events_;  // indexed by TransitionId::value

    const TransitionEvent& event(petri::TransitionId t) const {
        return events_.at(t.value);
    }

    /// Renders a PN firing in DFS vocabulary — the witness language of
    /// the paper's debugging workflow ("push filt destroys a bypassed
    /// token") instead of the raw firing name ("Mf_filt+").
    std::string describe_transition(const Graph& graph,
                                    petri::TransitionId t) const;
};

/// Translates a (valid) DFS model into its 1-safe read-arc Petri net
/// semantics per Section II-C. Each state variable becomes an x_0/x_1
/// place pair with x+ / x- transitions between them; enabling conditions
/// of the DFS equations become read arcs. Dynamic registers refine M± into
/// the mutually exclusive Mt±/Mf± pairs.
Translation to_petri(const Graph& graph);

}  // namespace rap::dfs
