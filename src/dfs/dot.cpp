#include "dfs/dot.hpp"

#include "util/dot.hpp"

namespace rap::dfs {

std::string to_dot(const Graph& graph) {
    util::DotWriter dot(graph.name());
    for (NodeId n : graph.nodes()) {
        std::string label = graph.node_name(n);
        std::vector<std::string> attrs;
        switch (graph.kind(n)) {
            case NodeKind::Logic:
                attrs = {"shape=box", "style=rounded"};
                break;
            case NodeKind::Register:
                attrs = {"shape=box", "peripheries=2"};
                break;
            case NodeKind::Control:
                attrs = {"shape=box", "peripheries=2", "style=filled",
                         "fillcolor=lightblue"};
                break;
            case NodeKind::Push:
                attrs = {"shape=box", "peripheries=2", "style=filled",
                         "fillcolor=lightsalmon"};
                break;
            case NodeKind::Pop:
                attrs = {"shape=box", "peripheries=2", "style=filled",
                         "fillcolor=lightgreen"};
                break;
        }
        if (!graph.is_logic(n)) {
            const InitialMarking& init = graph.initial(n);
            if (init.marked) {
                label += graph.is_dynamic(n)
                             ? (init.token == TokenValue::True ? " [T]"
                                                               : " [F]")
                             : " [*]";
            }
        }
        attrs.push_back("label=" + util::DotWriter::quote(label));
        dot.add_node(graph.node_name(n), attrs);
    }
    for (NodeId n : graph.nodes()) {
        for (NodeId succ : graph.postset(n)) {
            std::vector<std::string> attrs;
            if (graph.kind(n) == NodeKind::Control) {
                attrs.push_back("style=dashed");
            }
            if (graph.is_inverted(n, succ)) {
                attrs.push_back("arrowhead=odot");  // inverting arc
            }
            dot.add_edge(graph.node_name(n), graph.node_name(succ), attrs);
        }
    }
    return dot.str();
}

}  // namespace rap::dfs
