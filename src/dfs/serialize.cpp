#include "dfs/serialize.hpp"

#include <fstream>
#include <sstream>
#include <stdexcept>

#include "util/strings.hpp"

namespace rap::dfs {

std::string to_text(const Graph& graph) {
    std::string out = "dfs " + graph.name() + "\n";
    for (const NodeId n : graph.nodes()) {
        out += std::string(to_string(graph.kind(n))) + " " +
               graph.node_name(n);
        if (!graph.is_logic(n)) {
            const InitialMarking& init = graph.initial(n);
            if (init.marked) {
                if (graph.is_dynamic(n)) {
                    out += init.token == TokenValue::True ? " T" : " F";
                } else {
                    out += " *";
                }
            }
        }
        out += "\n";
    }
    for (const NodeId n : graph.nodes()) {
        for (const NodeId succ : graph.postset(n)) {
            out += "edge " + graph.node_name(n) + " " +
                   graph.node_name(succ);
            if (graph.is_inverted(n, succ)) out += " inv";
            out += "\n";
        }
    }
    return out;
}

namespace {

[[noreturn]] void fail(std::size_t line, const std::string& message) {
    throw std::invalid_argument(
        util::format("dfs parse error, line %zu: %s", line,
                     message.c_str()));
}

}  // namespace

Graph from_text(std::string_view text) {
    std::optional<Graph> graph;
    std::size_t line_no = 0;

    for (const std::string& raw : util::split(std::string(text), '\n')) {
        ++line_no;
        const std::string_view line = util::trim(raw);
        if (line.empty() || line.front() == '#') continue;

        std::istringstream words{std::string(line)};
        std::string keyword;
        words >> keyword;

        if (keyword == "dfs") {
            if (graph) fail(line_no, "duplicate 'dfs' header");
            std::string name;
            words >> name;
            if (name.empty()) fail(line_no, "missing model name");
            graph.emplace(name);
            continue;
        }
        if (!graph) fail(line_no, "expected 'dfs <name>' header first");

        if (keyword == "edge") {
            std::string from, to, flag;
            words >> from >> to >> flag;
            if (from.empty() || to.empty()) {
                fail(line_no, "edge needs two node names");
            }
            const auto src = graph->find(from);
            const auto dst = graph->find(to);
            if (!src) fail(line_no, "unknown node '" + from + "'");
            if (!dst) fail(line_no, "unknown node '" + to + "'");
            if (flag == "inv") {
                graph->connect_inverted(*src, *dst);
            } else if (flag.empty()) {
                graph->connect(*src, *dst);
            } else {
                fail(line_no, "unknown edge flag '" + flag + "'");
            }
            continue;
        }

        // Node lines.
        std::string name, marking;
        words >> name >> marking;
        if (name.empty()) fail(line_no, "missing node name");
        if (keyword == "logic") {
            if (!marking.empty()) {
                fail(line_no, "logic nodes carry no marking");
            }
            graph->add_logic(name);
        } else if (keyword == "register") {
            if (!marking.empty() && marking != "*") {
                fail(line_no, "register marking must be '*'");
            }
            graph->add_register(name, marking == "*");
        } else if (keyword == "control" || keyword == "push" ||
                   keyword == "pop") {
            bool marked = false;
            TokenValue token = TokenValue::True;
            if (marking == "T") {
                marked = true;
            } else if (marking == "F") {
                marked = true;
                token = TokenValue::False;
            } else if (!marking.empty()) {
                fail(line_no, "dynamic marking must be 'T' or 'F'");
            }
            if (keyword == "control") {
                graph->add_control(name, marked, token);
            } else if (keyword == "push") {
                graph->add_push(name, marked, token);
            } else {
                graph->add_pop(name, marked, token);
            }
        } else {
            fail(line_no, "unknown keyword '" + keyword + "'");
        }
    }
    if (!graph) throw std::invalid_argument("dfs parse error: empty input");
    return std::move(*graph);
}

void save_file(const Graph& graph, const std::string& path) {
    std::ofstream os(path);
    if (!os) throw std::runtime_error("cannot open for writing: " + path);
    os << to_text(graph);
    if (!os) throw std::runtime_error("write failed: " + path);
}

Graph load_file(const std::string& path) {
    std::ifstream is(path);
    if (!is) throw std::runtime_error("cannot open for reading: " + path);
    std::stringstream buffer;
    buffer << is.rdbuf();
    return from_text(buffer.str());
}

}  // namespace rap::dfs
