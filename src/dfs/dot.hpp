#pragma once

#include <string>

#include "dfs/model.hpp"

namespace rap::dfs {

/// Renders a DFS model in Graphviz DOT using the Fig. 2 vocabulary:
/// plain boxes for logic, framed boxes for registers, and distinctive
/// shades/labels for control, push and pop nodes; initially marked
/// registers carry a token dot (●) and dynamic registers show their token
/// polarity.
std::string to_dot(const Graph& graph);

}  // namespace rap::dfs
