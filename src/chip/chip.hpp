#pragma once

#include <cstdint>
#include <memory>
#include <span>
#include <vector>

#include "asim/timed_sim.hpp"
#include "netlist/netlist.hpp"
#include "ope/dfs_models.hpp"
#include "pipeline/builder.hpp"
#include "tech/voltage.hpp"

namespace rap::chip {

/// Which OPE core the `config` input selects (Fig. 8a).
enum class Core { Static, Reconfigurable };

/// Chip-level build options.
struct ChipOptions {
    int stages = 18;  ///< physical pipeline length (the chip's 18)
    Core core = Core::Static;
    /// Active depth (= OPE window size). Must equal `stages` for the
    /// static core; 3..stages for the reconfigurable one.
    int depth = 18;
    /// Completion topology of the stage synchronisation. The fabricated
    /// reconfigurable core used the daisy chain (the 36% overhead); the
    /// static core and the proposed fix use the tree.
    netlist::SyncTopology sync = netlist::SyncTopology::Tree;
    int data_width = 16;
    tech::ProcessParams process{};
};

// ---------------------------------------------------------------- modes --

/// Result of a random-mode run: one checksum word after `count` items
/// (Fig. 8a's accumulator output).
struct FunctionalResult {
    std::uint64_t checksum = 0;
    std::uint64_t items = 0;
    std::uint64_t rank_lists = 0;
};

/// Functional (value-level) random-mode run of the selected core: LFSR
/// stream -> OPE pipeline (incremental stage-parallel encoder) ->
/// checksum accumulator.
FunctionalResult run_random_mode(const ChipOptions& options,
                                 std::uint16_t seed, std::uint64_t count);

/// Functional normal-mode run: caller-supplied stream in, rank lists out.
std::vector<std::vector<int>> run_normal_mode(
    const ChipOptions& options, std::span<const std::int64_t> items);

/// Golden checksum from the behavioural model (ReferenceEncoder) with the
/// same seed/count — what the paper validates the silicon against.
std::uint64_t reference_checksum(int window, std::uint16_t seed,
                                 std::uint64_t count);

// ---------------------------------------------------------- measurement --

/// One timed measurement, the substitute for the FPGA timer (1 ms
/// precision) + Keithley source meter (1 nW) of Section IV.
struct Measurement {
    double time_s = 0;
    double dynamic_j = 0;
    double leakage_j = 0;
    std::uint64_t items = 0;
    bool frozen = false;
    bool deadlocked = false;

    double energy_j() const { return dynamic_j + leakage_j; }
    double time_per_item_s() const {
        return items ? time_s / static_cast<double>(items) : 0;
    }
    double energy_per_item_j() const {
        return items ? energy_j() / static_cast<double>(items) : 0;
    }
};

/// The evaluation chip + test bench: builds the DFS model of the selected
/// core, maps it onto the NCL-D library, and drives the timed simulator
/// under configurable supply conditions.
class Evaluation {
public:
    explicit Evaluation(ChipOptions options);

    const ChipOptions& options() const noexcept { return options_; }
    const pipeline::Pipeline& model() const noexcept { return model_; }
    const netlist::Netlist& netlist() const noexcept { return *netlist_; }
    netlist::NetlistStats implementation_stats() const;

    /// Processes `items` input items at a constant supply voltage.
    Measurement measure(double voltage, std::uint64_t items) const;

    /// Processes up to `items` items under an arbitrary supply schedule,
    /// sampling the power trace with `trace_bin_s` bins (Fig. 9b's
    /// instrument). The run also stops at `max_time_s`.
    asim::TimedStats measure_with_schedule(
        const tech::VoltageSchedule& schedule, std::uint64_t items,
        double trace_bin_s, double max_time_s) const;

private:
    asim::TimingMap annotated_timing() const;

    ChipOptions options_;
    pipeline::Pipeline model_;
    std::unique_ptr<netlist::Netlist> netlist_;
    tech::VoltageModel voltage_model_;
};

/// Scale factors mapping simulator units onto the paper's absolute
/// reference: the static core at the nominal 1.2V processing 16M items
/// measured 1.22 s and 2.74 mJ.
struct PaperCalibration {
    double time_scale = 1;    ///< paper-seconds per sim-second
    double energy_scale = 1;  ///< paper-joules per sim-joule

    static constexpr double kReferenceTimeS = 1.22;
    static constexpr double kReferenceEnergyJ = 2.74e-3;
    static constexpr double kReferenceItems = 16e6;

    /// Derives the scales from a nominal-voltage measurement of the
    /// static core.
    static PaperCalibration from(const Measurement& static_nominal);
};

}  // namespace rap::chip
