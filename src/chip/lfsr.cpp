#include "chip/lfsr.hpp"

namespace rap::chip {

Lfsr::Lfsr(std::uint16_t seed) : state_(seed == 0 ? 0xACE1u : seed) {
    // The all-zero state is the one fixed point of a Galois LFSR; the
    // hardware maps it to a non-zero default exactly like this.
}

std::uint16_t Lfsr::next() noexcept {
    const std::uint16_t out = state_;
    const bool lsb = state_ & 1u;
    state_ >>= 1;
    if (lsb) state_ ^= 0xB400u;
    return out;
}

}  // namespace rap::chip
