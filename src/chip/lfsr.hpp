#pragma once

#include <cstdint>

namespace rap::chip {

/// 16-bit Galois LFSR (taps x^16 + x^14 + x^13 + x^11 + 1, maximal
/// length) — the on-chip stimulus generator of the random mode (Fig. 8a):
/// a user-supplied seed produces a deterministic pseudo-random stream so
/// that performance/energy measurements exclude testbench I/O.
class Lfsr {
public:
    explicit Lfsr(std::uint16_t seed);

    /// Current state (the next value to be emitted).
    std::uint16_t state() const noexcept { return state_; }

    /// Emits the current value and advances.
    std::uint16_t next() noexcept;

    /// Period of the maximal-length sequence.
    static constexpr std::uint32_t period() { return 65535; }

private:
    std::uint16_t state_;
};

}  // namespace rap::chip
