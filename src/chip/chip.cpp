#include "chip/chip.hpp"

#include <stdexcept>

#include "chip/lfsr.hpp"
#include "dfs/dynamics.hpp"
#include "ope/encoder.hpp"

namespace rap::chip {

namespace {

void check_options(const ChipOptions& options) {
    if (options.stages < 1) {
        throw std::invalid_argument("chip needs at least one stage");
    }
    if (options.core == Core::Static) {
        if (options.depth != options.stages) {
            throw std::invalid_argument(
                "the static core's depth is fixed at its stage count");
        }
    } else {
        if (options.depth < ope::min_depth() ||
            options.depth > options.stages) {
            throw std::invalid_argument(
                "reconfigurable depth must be in [3, stages]");
        }
    }
}

}  // namespace

FunctionalResult run_random_mode(const ChipOptions& options,
                                 std::uint16_t seed, std::uint64_t count) {
    check_options(options);
    Lfsr lfsr(seed);
    ope::PipelineEncoder encoder(options.depth);
    FunctionalResult result;
    for (std::uint64_t i = 0; i < count; ++i) {
        const auto ranks = encoder.push(lfsr.next());
        ++result.items;
        if (ranks) {
            ++result.rank_lists;
            result.checksum = ope::fold_checksum(result.checksum, *ranks);
        }
    }
    return result;
}

std::vector<std::vector<int>> run_normal_mode(
    const ChipOptions& options, std::span<const std::int64_t> items) {
    check_options(options);
    ope::PipelineEncoder encoder(options.depth);
    std::vector<std::vector<int>> outputs;
    for (const auto item : items) {
        if (auto ranks = encoder.push(item)) {
            outputs.push_back(std::move(*ranks));
        }
    }
    return outputs;
}

std::uint64_t reference_checksum(int window, std::uint16_t seed,
                                 std::uint64_t count) {
    Lfsr lfsr(seed);
    ope::ReferenceEncoder encoder(window);
    std::uint64_t checksum = 0;
    for (std::uint64_t i = 0; i < count; ++i) {
        if (auto ranks = encoder.push(lfsr.next())) {
            checksum = ope::fold_checksum(checksum, *ranks);
        }
    }
    return checksum;
}

Evaluation::Evaluation(ChipOptions options)
    : options_(options),
      model_(options.core == Core::Static
                 ? ope::build_static_ope_dfs(options.stages)
                 : ope::build_reconfigurable_ope_dfs(options.stages,
                                                     options.depth)),
      voltage_model_(options.process) {
    check_options(options);
    netlist::Library::Options lib_options;
    lib_options.data_width = options.data_width;
    lib_options.sync = options.sync;
    netlist_ = std::make_unique<netlist::Netlist>(
        model_.graph, netlist::Library(lib_options));
}

netlist::NetlistStats Evaluation::implementation_stats() const {
    return netlist_->stats();
}

asim::TimingMap Evaluation::annotated_timing() const {
    asim::TimingMap timing = netlist_->timing();
    const auto& lib = netlist_->library();
    if (options_.sync == netlist::SyncTopology::DaisyChain) {
        // The daisy chain threads the completion of consecutive stages:
        // each *active* stage contribution is serialised instead of
        // overlapped, so the aggregation's effective delay grows with
        // the number of real tokens it joins. Empty tokens from bypassed
        // stages ripple through one C-element only (kept in delay_s via
        // the library's daisy sync_depth).
        // Per-link cost of the chain: the C-element itself plus the long
        // inter-stage wiring and buffering the floorplan imposes on a
        // chain that snakes across all 18 stages (the tree overlaps these
        // segments). Fitted to the silicon's measured +36%.
        const double c_delay = 8.0 * lib.options().gate_delay_s;
        timing[model_.agg.value].delay_per_true_input_s = c_delay;
        // The broadcast of the common input collects acknowledgements
        // through the same chain.
        timing[model_.in.value].delay_per_true_input_s = 0;
    }
    return timing;
}

Measurement Evaluation::measure(double voltage, std::uint64_t items) const {
    const dfs::Dynamics dynamics(model_.graph);
    asim::TimedSimulator sim(dynamics, annotated_timing(), voltage_model_,
                             tech::VoltageSchedule::constant(voltage),
                             netlist_->total_gates());
    dfs::State state = dfs::State::initial(model_.graph);
    asim::RunLimits limits;
    limits.target_marks = items;
    limits.observe = model_.out;
    const auto stats = sim.run(state, limits);

    Measurement m;
    m.time_s = stats.time_s;
    m.dynamic_j = stats.dynamic_energy_j;
    m.leakage_j = stats.leakage_energy_j;
    m.items = stats.marks_at(model_.out);
    m.frozen = stats.frozen;
    m.deadlocked = stats.deadlocked;
    return m;
}

asim::TimedStats Evaluation::measure_with_schedule(
    const tech::VoltageSchedule& schedule, std::uint64_t items,
    double trace_bin_s, double max_time_s) const {
    const dfs::Dynamics dynamics(model_.graph);
    asim::TimedSimulator sim(dynamics, annotated_timing(), voltage_model_,
                             schedule, netlist_->total_gates());
    if (trace_bin_s > 0) sim.enable_power_trace(trace_bin_s);
    dfs::State state = dfs::State::initial(model_.graph);
    asim::RunLimits limits;
    limits.target_marks = items;
    limits.observe = model_.out;
    limits.max_time_s = max_time_s;
    return sim.run(state, limits);
}

PaperCalibration PaperCalibration::from(const Measurement& static_nominal) {
    PaperCalibration cal;
    if (static_nominal.items == 0 || static_nominal.time_s <= 0) return cal;
    const double items_ratio =
        kReferenceItems / static_cast<double>(static_nominal.items);
    cal.time_scale =
        kReferenceTimeS / (static_nominal.time_s * items_ratio);
    cal.energy_scale =
        kReferenceEnergyJ / (static_nominal.energy_j() * items_ratio);
    return cal;
}

}  // namespace rap::chip
